//===- fuzz/Generator.cpp - Adversarial random programs -------------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Generator.h"

#include "ir/ProgramBuilder.h"
#include "support/Rng.h"

#include <optional>
#include <string>
#include <vector>

using namespace intro;
using namespace intro::fuzz;

namespace {

/// Builds one program: a planted pathological shape (per bias) surrounded by
/// uniform random noise.  Mirrors workload/Random.cpp's RandomGen but keeps
/// its own class/field/method pools so the planted structure is never
/// accidentally diluted by the noise phase.
class FuzzGen {
public:
  FuzzGen(uint64_t Seed, FuzzBias Bias, const FuzzProgramOptions &Options)
      : R(Seed), Bias(Bias), Opt(Options) {}

  Program run() {
    Root = B.cls("Object");
    Types.push_back(Root);
    Main = B.method(Root, "main", 0, /*IsStatic=*/true);
    B.entry(Main->id());

    switch (Bias) {
    case FuzzBias::Uniform:
      break;
    case FuzzBias::HubObjects:
      plantHub();
      break;
    case FuzzBias::DeepCalls:
      plantDeepChain();
      break;
    case FuzzBias::CastHeavy:
      plantCastLattice();
      break;
    case FuzzBias::DegenerateHierarchy:
      plantDegenerateHierarchy();
      break;
    case FuzzBias::CornerShapes:
      plantCornerShapes();
      break;
    }

    makeNoiseClasses();
    declareNoiseMethods();
    fillNoiseBodies();
    fillMain();
    return B.take();
  }

private:
  // --- Planted shapes ----------------------------------------------------

  /// Hub: one class, one field, and Opt.HubAllocSites allocation sites that
  /// all flow into a single variable and a single field of a single base
  /// object.  The hub variable's points-to set crosses the IdSet promotion
  /// threshold; loading the field back gives a second dense set built via
  /// batched unions.
  void plantHub() {
    TypeId Node = B.cls("Hub", Root);
    Types.push_back(Node);
    FieldId Slot = B.field(Node, "slot");
    Fields.push_back(Slot);
    MethodBuilder &M = *Main;
    VarId Hub = M.local("hub");
    VarId Base = M.local("hubBase");
    M.alloc(Base, Node);
    for (uint32_t Index = 0; Index < Opt.HubAllocSites; ++Index) {
      M.alloc(Hub, Node);
      M.store(Base, Slot, Hub);
    }
    VarId Back = M.local("hubBack");
    M.load(Back, Base, Slot);
    // Funnel the dense set through a cast and a self-move, so the filtered
    // and copy paths see a promoted set too.
    VarId Cast = M.local("hubCast");
    M.cast(Cast, Back, Node);
    M.move(Back, Back);
    MainPool.push_back(Base);
    MainPool.push_back(Back);
  }

  /// Deep calls: step0(x) -> step1(x) -> ... each static method passes its
  /// payload down and the return value back up, with a fresh allocation
  /// mixed in at every level.  Context-sensitive policies truncate somewhere
  /// inside the chain; the bottom also calls back to the top so the chain
  /// is cyclic for half the seeds.
  void plantDeepChain() {
    uint32_t Depth = 2 + R.below(Opt.CallChainDepth);
    std::vector<MethodBuilder> Steps;
    for (uint32_t Index = 0; Index < Depth; ++Index)
      Steps.push_back(
          B.method(Root, "step" + std::to_string(Index), 1, /*IsStatic=*/true));
    bool Cyclic = R.chance(500);
    for (uint32_t Index = 0; Index < Depth; ++Index) {
      MethodBuilder &M = Steps[Index];
      VarId Payload = M.formal(0);
      VarId Fresh = M.local("fresh");
      M.alloc(Fresh, Root);
      VarId Got = M.local("got");
      if (Index + 1 < Depth) {
        M.scall(Got, Steps[Index + 1].id(), {Payload});
      } else if (Cyclic) {
        M.scall(Got, Steps[0].id(), {Fresh});
      } else {
        M.move(Got, Fresh);
      }
      M.move(M.returnVar(), R.chance(500) ? Got : Payload);
    }
    MethodBuilder &M = *Main;
    VarId Seed = M.local("chainSeed");
    M.alloc(Seed, Root);
    VarId Out = M.local("chainOut");
    M.scall(Out, Steps[0].id(), {Seed});
    MainPool.push_back(Out);
  }

  /// Casts: a small sibling lattice (Base with children L and Rt, grandchild
  /// LL) and a chain of casts that alternately widen and narrow a mixed set.
  /// Concretely some casts succeed and some fail, so the solver's
  /// cast-as-filter option and the interpreter's exact semantics diverge in
  /// interesting (but sound) ways.
  void plantCastLattice() {
    TypeId Base = B.cls("CastBase", Root);
    TypeId Left = B.cls("CastL", Base);
    TypeId Right = B.cls("CastR", Base);
    TypeId LeftLeft = B.cls("CastLL", Left);
    std::vector<TypeId> Lattice = {Base, Left, Right, LeftLeft};
    for (TypeId T : Lattice)
      Types.push_back(T);
    MethodBuilder &M = *Main;
    VarId Mixed = M.local("mixed");
    for (TypeId T : Lattice)
      M.alloc(Mixed, T);
    VarId Prev = Mixed;
    for (uint32_t Index = 0; Index < Opt.CastChainLength; ++Index) {
      VarId Next = M.local("cast" + std::to_string(Index));
      M.cast(Next, Prev, Lattice[R.below(4)]);
      // Occasionally re-widen so the chain does not drain to empty.
      if (R.chance(300))
        M.alloc(Next, Lattice[R.below(4)]);
      Prev = Next;
    }
    MainPool.push_back(Mixed);
    MainPool.push_back(Prev);
  }

  /// Degenerate hierarchy: a single-inheritance chain Depth deep where every
  /// level overrides `id`, plus a flat fan of Width leaves under the chain's
  /// root that do NOT override it (inheriting the deepest ancestor's copy).
  /// A receiver holding one object of every class exercises LOOKUP across
  /// the whole degenerate shape.
  void plantDegenerateHierarchy() {
    std::vector<TypeId> Chain;
    TypeId Prev = Root;
    for (uint32_t Index = 0; Index < Opt.HierarchyDepth; ++Index) {
      TypeId T = B.cls("Deep" + std::to_string(Index), Prev);
      Chain.push_back(T);
      Types.push_back(T);
      Prev = T;
    }
    // Overrides along the chain: every other level, so lookup must walk.
    std::vector<MethodBuilder> Ids;
    for (uint32_t Index = 0; Index < Chain.size(); ++Index)
      if (Index % 2 == 0 || R.chance(300))
        Ids.push_back(B.method(Chain[Index], "id", 0, /*IsStatic=*/false));
    std::vector<TypeId> Leaves;
    for (uint32_t Index = 0; Index < Opt.HierarchyWidth; ++Index) {
      TypeId Leaf = B.cls("Wide" + std::to_string(Index), Chain.back());
      Leaves.push_back(Leaf);
      Types.push_back(Leaf);
    }
    for (MethodBuilder &M : Ids)
      M.move(M.returnVar(), M.thisVar());
    MethodBuilder &M = *Main;
    VarId Recv = M.local("degRecv");
    for (TypeId T : Chain)
      M.alloc(Recv, T);
    for (TypeId T : Leaves)
      M.alloc(Recv, T);
    VarId Got = M.local("degGot");
    M.vcall(Got, Recv, "id", {});
    M.vcall(Got, Got, "id", {});
    MainPool.push_back(Recv);
    MainPool.push_back(Got);
  }

  /// Corner shapes: structure that is syntactically legal but semantically
  /// empty or redundant — empty bodies, duplicate instructions, self-moves
  /// and self-stores, virtual dispatch on a variable that never receives an
  /// object, methods only reachable through themselves.
  void plantCornerShapes() {
    TypeId Ghost = B.cls("Ghost", Root);
    Types.push_back(Ghost);
    FieldId Loop = B.field(Ghost, "loop");
    Fields.push_back(Loop);
    // Empty virtual method and an empty static method.
    B.method(Ghost, "nop", 0, /*IsStatic=*/false);
    MethodBuilder Orphan = B.method(Ghost, "orphan", 0, /*IsStatic=*/true);
    // Unreachable self-recursion: orphan calls itself, nobody calls orphan.
    Orphan.scall(VarId::invalid(), Orphan.id(), {});
    MethodBuilder &M = *Main;
    VarId Never = M.local("never");
    // Dispatch with no receivers: `never` has an empty points-to set.
    M.vcall(VarId::invalid(), Never, "nop", {});
    VarId Self = M.local("self");
    M.alloc(Self, Ghost);
    // Duplicate edges: the same move/store/load emitted repeatedly.
    for (uint32_t Index = 0; Index < 4 + R.below(4); ++Index) {
      M.move(Self, Self);
      M.store(Self, Loop, Self);
      M.load(Self, Self, Loop);
    }
    // A duplicate call site pair (same base, same signature).
    M.vcall(VarId::invalid(), Self, "nop", {});
    M.vcall(VarId::invalid(), Self, "nop", {});
    MainPool.push_back(Self);
    MainPool.push_back(Never);
  }

  // --- Uniform noise (mirrors workload/Random.cpp) -----------------------

  void makeNoiseClasses() {
    for (uint32_t Index = 0; Index < Opt.NumClasses; ++Index) {
      TypeId Super = Types[R.below(static_cast<uint32_t>(Types.size()))];
      Types.push_back(B.cls("N" + std::to_string(Index), Super));
    }
    for (TypeId Type : Types)
      if (R.chance(400))
        Fields.push_back(B.field(Type, "g" + std::to_string(Fields.size())));
  }

  void declareNoiseMethods() {
    for (uint32_t Sig = 0; Sig < Opt.NumVirtualSigs; ++Sig) {
      std::string Name = "v" + std::to_string(Sig);
      uint32_t Arity = R.below(3);
      SigArities.push_back(Arity);
      for (TypeId Type : Types)
        if (R.chance(400))
          Bodies.push_back(B.method(Type, Name, Arity, /*IsStatic=*/false));
    }
    for (uint32_t Index = 0; Index < Opt.NumStaticMethods; ++Index) {
      MethodBuilder M =
          B.method(Types[R.below(static_cast<uint32_t>(Types.size()))],
                   "h" + std::to_string(Index), R.below(3), /*IsStatic=*/true);
      Statics.push_back(M.id());
      Bodies.push_back(M);
    }
  }

  VarId randomVar(MethodBuilder &MB, std::vector<VarId> &Pool) {
    if (Pool.empty() || (Pool.size() < Opt.LocalsPerMethod && R.chance(300)))
      Pool.push_back(MB.local("t" + std::to_string(Pool.size())));
    return Pool[R.below(static_cast<uint32_t>(Pool.size()))];
  }

  TypeId randomType() {
    return Types[R.below(static_cast<uint32_t>(Types.size()))];
  }

  void emitNoise(MethodBuilder MB, uint32_t Length, std::vector<VarId> Pool) {
    const MethodInfo &Info = B.current().method(MB.id());
    if (!Info.IsStatic)
      Pool.push_back(Info.This);
    for (VarId Formal : Info.Formals)
      Pool.push_back(Formal);

    for (uint32_t Index = 0; Index < Length; ++Index) {
      switch (R.below(10)) {
      case 0:
      case 1:
        MB.alloc(randomVar(MB, Pool), randomType());
        break;
      case 2:
        MB.move(randomVar(MB, Pool), randomVar(MB, Pool));
        break;
      case 3:
        MB.cast(randomVar(MB, Pool), randomVar(MB, Pool), randomType());
        break;
      case 4:
        if (!Fields.empty())
          MB.load(randomVar(MB, Pool), randomVar(MB, Pool),
                  Fields[R.below(static_cast<uint32_t>(Fields.size()))]);
        break;
      case 5:
        if (!Fields.empty())
          MB.store(randomVar(MB, Pool),
                   Fields[R.below(static_cast<uint32_t>(Fields.size()))],
                   randomVar(MB, Pool));
        break;
      case 6: {
        if (SigArities.empty())
          break;
        uint32_t Sig = R.below(static_cast<uint32_t>(SigArities.size()));
        std::vector<VarId> Args;
        for (uint32_t Arg = 0; Arg < SigArities[Sig]; ++Arg)
          Args.push_back(randomVar(MB, Pool));
        VarId Result = R.chance(600) ? randomVar(MB, Pool) : VarId::invalid();
        SiteId Site = MB.vcall(Result, randomVar(MB, Pool),
                               "v" + std::to_string(Sig), Args);
        if (R.chance(250))
          MB.attachCatch(Site, randomType(), randomVar(MB, Pool));
        break;
      }
      case 7: {
        if (Statics.empty())
          break;
        MethodId Target =
            Statics[R.below(static_cast<uint32_t>(Statics.size()))];
        const MethodInfo &TargetInfo = B.current().method(Target);
        std::vector<VarId> Args;
        for (size_t Arg = 0; Arg < TargetInfo.Formals.size(); ++Arg)
          Args.push_back(randomVar(MB, Pool));
        VarId Result = R.chance(600) ? randomVar(MB, Pool) : VarId::invalid();
        SiteId Site = MB.scall(Result, Target, Args);
        if (R.chance(250))
          MB.attachCatch(Site, randomType(), randomVar(MB, Pool));
        break;
      }
      case 8:
        if (!Fields.empty()) {
          FieldId F = Fields[R.below(static_cast<uint32_t>(Fields.size()))];
          if (R.chance(500))
            MB.sload(randomVar(MB, Pool), F);
          else
            MB.sstore(F, randomVar(MB, Pool));
        }
        break;
      case 9:
        if (R.chance(350))
          MB.throwStmt(randomVar(MB, Pool));
        break;
      }
    }
    if (R.chance(500) && !Pool.empty())
      MB.move(MB.returnVar(),
              Pool[R.below(static_cast<uint32_t>(Pool.size()))]);
  }

  void fillNoiseBodies() {
    for (MethodBuilder &MB : Bodies)
      emitNoise(MB, 1 + R.below(Opt.InstructionsPerBody), {});
  }

  void fillMain() {
    MethodBuilder &M = *Main;
    // Guarantee receivers even for Uniform (the planted shapes already
    // allocated into MainPool for the other biases).
    for (uint32_t Index = 0; Index < 2 + R.below(3); ++Index) {
      VarId Var = M.local("r" + std::to_string(Index));
      M.alloc(Var, randomType());
      MainPool.push_back(Var);
    }
    emitNoise(M, 3 + R.below(Opt.InstructionsPerBody), MainPool);
    // Half the seeds end main with a throw of a definitely-allocated
    // object: escaping-exception facts (MethodThrows / THROWPOINTSTO) are
    // otherwise too rare for the oracles to exercise them reliably.
    if (R.chance(500))
      M.throwStmt(MainPool[R.below(static_cast<uint32_t>(MainPool.size()))]);
  }

  Rng R;
  FuzzBias Bias;
  const FuzzProgramOptions &Opt;
  ProgramBuilder B;
  TypeId Root;
  std::optional<MethodBuilder> Main;
  std::vector<VarId> MainPool;
  std::vector<TypeId> Types;
  std::vector<FieldId> Fields;
  std::vector<MethodBuilder> Bodies;
  std::vector<MethodId> Statics;
  std::vector<uint32_t> SigArities;
};

} // namespace

const char *intro::fuzz::fuzzBiasName(FuzzBias Bias) {
  switch (Bias) {
  case FuzzBias::Uniform:
    return "uniform";
  case FuzzBias::HubObjects:
    return "hub-objects";
  case FuzzBias::DeepCalls:
    return "deep-calls";
  case FuzzBias::CastHeavy:
    return "cast-heavy";
  case FuzzBias::DegenerateHierarchy:
    return "degenerate-hierarchy";
  case FuzzBias::CornerShapes:
    return "corner-shapes";
  }
  return "unknown";
}

bool intro::fuzz::fuzzBiasFromName(std::string_view Name, FuzzBias &Bias) {
  for (size_t Index = 0; Index < NumFuzzBiases; ++Index) {
    FuzzBias Candidate = static_cast<FuzzBias>(Index);
    if (Name == fuzzBiasName(Candidate)) {
      Bias = Candidate;
      return true;
    }
  }
  return false;
}

FuzzBias intro::fuzz::biasForSeed(uint64_t Seed) {
  return static_cast<FuzzBias>(Seed % NumFuzzBiases);
}

Program intro::fuzz::generateFuzzProgram(uint64_t Seed, FuzzBias Bias,
                                         const FuzzProgramOptions &Options) {
  return FuzzGen(Seed, Bias, Options).run();
}
