//===- fuzz/Reducer.h - Delta-debugging test-case reducer -------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shrinks a failing program to a minimal reproducer, ddmin-style, over the
/// *canonical printed text* (frontend/Printer.h) rather than the in-memory
/// IR: the printer's fixed layout makes class blocks, method blocks, and
/// statement lines trivially identifiable, and re-parsing each candidate
/// guarantees the shrunk program is exactly what a `.ir` repro file will
/// contain.  Three granularities, coarse to fine:
///
///   1. whole class blocks,
///   2. whole method blocks,
///   3. individual statement lines,
///
/// each removed in exponentially shrinking chunks (all, halves, quarters,
/// ... single units) and re-checked: a candidate survives only if it still
/// parses, still validates, and the caller's predicate still fails on it.
/// Removals that break references (a deleted class still extended, a
/// deleted static-call target) are rejected by the parse/validate gate
/// automatically, so the reducer needs no dependency analysis.  The loop
/// repeats until no single unit can be removed (a 1-minimal result) or the
/// check budget runs out.
///
//===----------------------------------------------------------------------===//

#ifndef FUZZ_REDUCER_H
#define FUZZ_REDUCER_H

#include <cstdint>
#include <functional>
#include <string>

namespace intro {
class Program;
} // namespace intro

namespace intro::fuzz {

/// \returns true when \p Prog still exhibits the failure being reduced.
/// The program passed in is parsed, finalized, and validator-clean.
using ReducePredicate = std::function<bool(const Program &Prog)>;

struct ReducerOptions {
  /// Upper bound on predicate evaluations (each one typically re-runs an
  /// oracle).  The reducer returns its best-so-far when exhausted.
  uint32_t MaxChecks = 2000;
};

struct ReduceOutcome {
  std::string Source;       ///< Canonical minimized source text.
  uint32_t Checks = 0;      ///< Predicate evaluations spent.
  uint32_t RemovedUnits = 0;///< Classes + methods + statements removed.
  uint64_t Statements = 0;  ///< Instructions remaining in the repro.
  /// True when the predicate holds on Source (it always should — Source
  /// only ever moves between predicate-failing candidates — but the flag
  /// makes the contract checkable by tests).
  bool PredicateHolds = false;
};

/// \returns the total instruction count of \p Prog (the "<= 10 statements"
/// currency of reduced repros).
uint64_t countStatements(const Program &Prog);

/// Reduces \p Prog against \p StillFails.  \p StillFails must return true
/// on \p Prog itself; if it does not (a flaky finding), the outcome carries
/// the unreduced canonical source with PredicateHolds == false.
ReduceOutcome reduceProgram(const Program &Prog,
                            const ReducePredicate &StillFails,
                            const ReducerOptions &Options = ReducerOptions());

} // namespace intro::fuzz

#endif // FUZZ_REDUCER_H
