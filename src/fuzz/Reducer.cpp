//===- fuzz/Reducer.cpp - Delta-debugging test-case reducer ---------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Reducer.h"

#include "frontend/Parser.h"
#include "frontend/Printer.h"
#include "ir/Program.h"
#include "ir/Validator.h"

#include <string_view>
#include <vector>

using namespace intro;
using namespace intro::fuzz;

namespace {

/// One removable region: a half-open line range.
struct Unit {
  size_t Begin;
  size_t End;
};

std::vector<std::string> splitLines(const std::string &Text) {
  std::vector<std::string> Lines;
  size_t Begin = 0;
  while (Begin < Text.size()) {
    size_t End = Text.find('\n', Begin);
    if (End == std::string::npos)
      End = Text.size();
    Lines.push_back(Text.substr(Begin, End - Begin));
    Begin = End + 1;
  }
  return Lines;
}

std::string joinLines(const std::vector<std::string> &Lines) {
  std::string Out;
  for (const std::string &Line : Lines) {
    Out += Line;
    Out += '\n';
  }
  return Out;
}

bool startsWith(const std::string &Line, std::string_view Prefix) {
  return Line.size() >= Prefix.size() &&
         std::string_view(Line).substr(0, Prefix.size()) == Prefix;
}

bool isStatementLine(const std::string &Line) {
  return startsWith(Line, "    ");
}

bool isMethodHeader(const std::string &Line) {
  if (!startsWith(Line, "  ") || isStatementLine(Line))
    return false;
  std::string_view View(Line);
  return (View.find("method ") != std::string_view::npos) &&
         View.size() >= 1 && View.back() == '{';
}

/// The removable units of one granularity, in line order.  Relies on the
/// printer's canonical layout: classes at column 0 (block closed by a bare
/// "}"), methods at two spaces (closed by "  }"), statements at four.
enum class Granularity { Class, Method, Statement };

std::vector<Unit> collectUnits(const std::vector<std::string> &Lines,
                               Granularity G) {
  std::vector<Unit> Units;
  for (size_t Index = 0; Index < Lines.size(); ++Index) {
    const std::string &Line = Lines[Index];
    switch (G) {
    case Granularity::Class:
      if (startsWith(Line, "class ")) {
        size_t End = Index + 1;
        if (!Line.empty() && Line.back() == '{') {
          while (End < Lines.size() && Lines[End] != "}")
            ++End;
          if (End < Lines.size())
            ++End; // Include the closing brace.
        }
        Units.push_back({Index, End});
        Index = End - 1;
      }
      break;
    case Granularity::Method:
      if (isMethodHeader(Line)) {
        size_t End = Index + 1;
        while (End < Lines.size() && Lines[End] != "  }")
          ++End;
        if (End < Lines.size())
          ++End;
        Units.push_back({Index, End});
        Index = End - 1;
      }
      break;
    case Granularity::Statement:
      if (isStatementLine(Line))
        Units.push_back({Index, Index + 1});
      break;
    }
  }
  return Units;
}

/// \p Lines minus the units in [\p First, \p Last) of \p Units.
std::vector<std::string> withoutUnits(const std::vector<std::string> &Lines,
                                      const std::vector<Unit> &Units,
                                      size_t First, size_t Last) {
  std::vector<bool> Removed(Lines.size(), false);
  for (size_t UnitIndex = First; UnitIndex < Last; ++UnitIndex)
    for (size_t Line = Units[UnitIndex].Begin; Line < Units[UnitIndex].End;
         ++Line)
      Removed[Line] = true;
  std::vector<std::string> Out;
  Out.reserve(Lines.size());
  for (size_t Line = 0; Line < Lines.size(); ++Line)
    if (!Removed[Line])
      Out.push_back(Lines[Line]);
  return Out;
}

struct Reduction {
  const ReducePredicate &StillFails;
  const ReducerOptions &Opt;
  uint32_t Checks = 0;
  uint32_t RemovedUnits = 0;

  bool budgetLeft() const { return Checks < Opt.MaxChecks; }

  /// Parse + validate + predicate gate on a candidate text.
  bool candidateFails(const std::string &Text) {
    ++Checks;
    ParseResult Parsed = parseProgram(Text);
    if (!Parsed.ok())
      return false;
    if (!validateProgram(Parsed.Prog).empty())
      return false;
    return StillFails(Parsed.Prog);
  }

  /// One ddmin sweep at granularity \p G: chunk sizes from all units down
  /// to one.  \returns true if anything was removed.
  bool sweep(std::vector<std::string> &Lines, Granularity G) {
    bool Progress = false;
    bool Retry = true;
    while (Retry && budgetLeft()) {
      Retry = false;
      std::vector<Unit> Units = collectUnits(Lines, G);
      if (Units.empty())
        return Progress;
      for (size_t Chunk = Units.size(); Chunk >= 1; Chunk /= 2) {
        bool RemovedAtThisSize = false;
        for (size_t First = 0; First < Units.size() && budgetLeft();
             First += Chunk) {
          size_t Last = std::min(First + Chunk, Units.size());
          std::vector<std::string> Candidate =
              withoutUnits(Lines, Units, First, Last);
          if (candidateFails(joinLines(Candidate))) {
            Lines = std::move(Candidate);
            RemovedUnits += static_cast<uint32_t>(Last - First);
            Progress = true;
            RemovedAtThisSize = true;
            // Unit indexing is stale now; rebuild and re-run this sweep.
            Retry = true;
            break;
          }
        }
        if (RemovedAtThisSize || Chunk == 1)
          break;
      }
    }
    return Progress;
  }
};

} // namespace

uint64_t intro::fuzz::countStatements(const Program &Prog) {
  uint64_t Total = 0;
  for (uint32_t Method = 0; Method < Prog.numMethods(); ++Method)
    Total += Prog.method(MethodId(Method)).Body.size();
  return Total;
}

ReduceOutcome intro::fuzz::reduceProgram(const Program &Prog,
                                         const ReducePredicate &StillFails,
                                         const ReducerOptions &Options) {
  ReduceOutcome Out;
  Out.Source = printProgram(Prog);
  Out.Statements = countStatements(Prog);

  Reduction R{StillFails, Options};
  // The contract gate: the unreduced program must fail.  (Uses the same
  // parse path as every candidate so a print/parse bug cannot masquerade
  // as a flaky predicate.)
  if (!R.candidateFails(Out.Source)) {
    Out.Checks = R.Checks;
    return Out;
  }

  std::vector<std::string> Lines = splitLines(Out.Source);
  // Coarse to fine; repeat while any pass makes progress (dropping a class
  // can unblock statement removals and vice versa).
  bool Progress = true;
  while (Progress && R.budgetLeft()) {
    Progress = false;
    Progress |= R.sweep(Lines, Granularity::Class);
    Progress |= R.sweep(Lines, Granularity::Method);
    Progress |= R.sweep(Lines, Granularity::Statement);
  }

  // Canonicalize through one final print∘parse so the emitted repro is in
  // printer-normal form (and recount the statements from the real IR).
  std::string Reduced = joinLines(Lines);
  ParseResult Final = parseProgram(Reduced);
  if (Final.ok()) {
    Out.Source = printProgram(Final.Prog);
    Out.Statements = countStatements(Final.Prog);
    Out.PredicateHolds = StillFails(Final.Prog);
  }
  Out.Checks = R.Checks;
  Out.RemovedUnits = R.RemovedUnits;
  return Out;
}
