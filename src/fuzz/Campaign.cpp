//===- fuzz/Campaign.cpp - Deterministic fuzzing campaigns ----------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Campaign.h"

#include "frontend/Printer.h"
#include "fuzz/Mutator.h"
#include "support/Json.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace intro;
using namespace intro::fuzz;

namespace {

/// The reducer predicate for one finding: does the candidate still trip
/// the same oracle?  Only that oracle runs, so reduction cost scales with
/// the cheapest check that reproduces the bug, not the whole harness.
ReducePredicate predicateFor(OracleKind Kind, const OracleOptions &Base) {
  OracleOptions Sub = Base;
  Sub.Oracles = OracleSet();
  Sub.Oracles.enable(Kind);
  return [Sub, Kind](const Program &Candidate) {
    OracleOutcome Outcome = checkProgram(Candidate, Sub);
    for (const Finding &F : Outcome.Findings)
      if (F.Oracle == Kind)
        return true;
    return false;
  };
}

bool isMutantFinding(const Finding &F) {
  return F.Policy.rfind("mutant-", 0) == 0;
}

/// Oracle-checks \p Prog (already parsed) and, on a finding, reduces it and
/// fills the repro fields.  Shared by generated seeds and corpus replay.
void checkAndReduce(const Program &Prog, const CampaignOptions &Options,
                    SeedReport &Report, const std::string &MutantSource) {
  OracleOutcome Outcome = checkProgram(Prog, Options.Oracles);
  Report.ChecksRun += Outcome.ChecksRun;
  Report.ChecksSkipped += Outcome.ChecksSkipped;
  for (Finding &F : Outcome.Findings)
    Report.Findings.push_back(std::move(F));
  if (Report.Findings.empty())
    return;

  const Finding &First = Report.Findings.front();
  if (isMutantFinding(First)) {
    // A mutant round-trip failure: the repro is the mutant bytes verbatim
    // (they are not a reducible program — most mutants barely parse).
    Report.Reduction.Source = MutantSource;
    Report.Reduction.Statements = 0;
    return;
  }
  if (!Options.Reduce) {
    Report.Reduction.Source = printProgram(Prog);
    Report.Reduction.Statements = countStatements(Prog);
    return;
  }
  ReducerOptions RO;
  RO.MaxChecks = Options.ReduceMaxChecks;
  Report.Reduction =
      reduceProgram(Prog, predicateFor(First.Oracle, Options.Oracles), RO);
  Report.Reduced = true;
}

/// Writes the quarantine-style artifact triple for a failing seed:
/// `<name>.ir` (minimized repro), `<name>.triage.json`, `<name>.reason.txt`.
void writeArtifacts(SeedReport &Report, const CampaignOptions &Options,
                    const std::string &Name) {
  if (Options.ReproDir.empty() || Report.Findings.empty())
    return;
  std::error_code Ignored;
  std::filesystem::create_directories(Options.ReproDir, Ignored);
  Report.ReproName = Name;
  std::string Stem = Options.ReproDir + "/" + Name;
  {
    std::ofstream Out(Stem + ".ir", std::ios::binary);
    Out << Report.Reduction.Source;
  }
  {
    const Finding &First = Report.Findings.front();
    std::ofstream Out(Stem + ".reason.txt", std::ios::binary);
    Out << oracleKindName(First.Oracle) << ": " << First.Detail << "\n";
  }
  {
    std::ofstream Out(Stem + ".triage.json", std::ios::binary);
    JsonWriter J(Out);
    J.beginObject();
    J.key("schema");
    J.value("intro-fuzz-triage-v1");
    J.key("name");
    J.value(Name);
    J.key("seed");
    J.value(Report.Seed);
    J.key("bias");
    J.value(fuzzBiasName(Report.Bias));
    J.key("planted_bug");
    J.value(plantedBugName(Options.Oracles.Bug));
    J.key("findings");
    J.beginArray();
    for (const Finding &F : Report.Findings) {
      J.beginObject();
      J.key("oracle");
      J.value(oracleKindName(F.Oracle));
      J.key("policy");
      J.value(F.Policy);
      J.key("detail");
      J.value(F.Detail);
      J.endObject();
    }
    J.endArray();
    J.key("reduced");
    J.beginObject();
    J.key("ran");
    J.value(Report.Reduced);
    J.key("statements");
    J.value(Report.Reduction.Statements);
    J.key("removed_units");
    J.value(Report.Reduction.RemovedUnits);
    J.key("checks");
    J.value(Report.Reduction.Checks);
    J.key("predicate_holds");
    J.value(Report.Reduction.PredicateHolds);
    J.endObject();
    J.endObject();
    Out << "\n";
  }
}

SeedReport runSeed(uint64_t Seed, const CampaignOptions &Options) {
  SeedReport Report;
  Report.Seed = Seed;
  Report.Bias = biasForSeed(Seed);
  Program Prog = generateFuzzProgram(Seed, Report.Bias, Options.Program);

  std::string MutantSource;
  checkAndReduce(Prog, Options, Report, MutantSource);

  // Byte-level frontend mutants of this seed's canonical text.  A crash
  // here takes the process down — which is exactly the signal the ASan CI
  // lane exists to catch; a surviving parse that breaks the round-trip
  // fixpoint is a finding like any other.
  if (Options.MutationsPerSeed > 0) {
    std::string Text = printProgram(Prog);
    for (uint32_t Index = 0; Index < Options.MutationsPerSeed; ++Index) {
      std::string Mutant = mutateBytes(Seed * 1000003ULL + Index, Text);
      ++Report.MutantsChecked;
      RoundTripOutcome RT = roundTripCheck(Mutant);
      if (!RT.ok()) {
        if (Report.Findings.empty()) {
          Report.Reduction.Source = Mutant;
          Report.Reduction.Statements = 0;
        }
        Report.Findings.push_back({OracleKind::RoundTrip,
                                   "mutant-" + std::to_string(Index),
                                   RT.Detail});
      }
    }
  }

  writeArtifacts(Report, Options,
                 "seed" + std::to_string(Seed) + "-" +
                     oracleKindName(Report.Findings.empty()
                                        ? OracleKind::Validity
                                        : Report.Findings.front().Oracle));
  return Report;
}

} // namespace

SeedReport intro::fuzz::replayProgram(const Program &Prog,
                                      const std::string &Name,
                                      const CampaignOptions &Options) {
  SeedReport Report;
  std::string MutantSource;
  checkAndReduce(Prog, Options, Report, MutantSource);
  if (!Report.Findings.empty())
    writeArtifacts(Report, Options,
                   Name + "-" +
                       oracleKindName(Report.Findings.front().Oracle));
  return Report;
}

CampaignOutcome intro::fuzz::runCampaign(const CampaignOptions &Options) {
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start = Clock::now();
  Clock::time_point Deadline =
      Start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(Options.BudgetSeconds));

  CampaignOutcome Outcome;
  Outcome.SeedsPlanned = Options.Count;
  std::vector<SeedReport> Slots(Options.Count);
  std::vector<std::atomic<bool>> Done(Options.Count);

  // Workers claim the next seed index *after* the deadline check, so the
  // started seeds are always the contiguous prefix [Seed, Seed+started):
  // a claimed seed always runs to completion, the budget only stops new
  // claims.  Per-seed work is self-contained, so results are independent
  // of the worker count.
  std::atomic<uint64_t> Next{0};
  std::atomic<bool> BudgetHit{false};
  auto Worker = [&] {
    while (true) {
      if (Options.BudgetSeconds > 0 && Clock::now() >= Deadline) {
        BudgetHit.store(true, std::memory_order_relaxed);
        return;
      }
      uint64_t Index = Next.fetch_add(1, std::memory_order_relaxed);
      if (Index >= Options.Count)
        return;
      Slots[Index] = runSeed(Options.Seed + Index, Options);
      Done[Index].store(true, std::memory_order_release);
    }
  };

  if (Options.Workers <= 1) {
    Worker();
  } else {
    ThreadPool Pool(Options.Workers);
    std::vector<std::future<void>> Futures;
    for (unsigned Index = 0; Index < Options.Workers; ++Index)
      Futures.push_back(Pool.submit(Worker));
    for (std::future<void> &F : Futures)
      F.get();
  }

  for (uint64_t Index = 0; Index < Options.Count; ++Index) {
    if (!Done[Index].load(std::memory_order_acquire))
      break;
    SeedReport &Report = Slots[Index];
    Outcome.TotalFindings += Report.Findings.size();
    Outcome.ChecksRun += Report.ChecksRun;
    Outcome.ChecksSkipped += Report.ChecksSkipped;
    Outcome.MutantsChecked += Report.MutantsChecked;
    Outcome.Seeds.push_back(std::move(Report));
  }
  Outcome.SeedsStarted = Outcome.Seeds.size();
  Outcome.BudgetExhausted =
      BudgetHit.load(std::memory_order_relaxed) &&
      Outcome.SeedsStarted < Outcome.SeedsPlanned;
  Outcome.Seconds =
      std::chrono::duration<double>(Clock::now() - Start).count();
  return Outcome;
}

void intro::fuzz::writeCampaignReportJson(std::ostream &Out,
                                          const CampaignOptions &Options,
                                          const CampaignOutcome &Outcome) {
  JsonWriter J(Out);
  J.beginObject();
  J.key("schema");
  J.value("intro-fuzz-report-v1");

  // Deterministic bytes: config echo and the failing seeds.  Byte-identical
  // across runs and worker counts for a fixed (seed, count, options); a
  // wall-clock budget can only shorten the *coverage* section below.
  J.key("deterministic");
  J.beginObject();
  J.key("config");
  J.beginObject();
  J.key("seed");
  J.value(Options.Seed);
  J.key("count");
  J.value(Options.Count);
  J.key("oracle_mask");
  J.value(static_cast<uint64_t>(Options.Oracles.Oracles.Mask));
  J.key("thorough");
  J.value(Options.Oracles.Thorough);
  J.key("max_tuples");
  J.value(Options.Oracles.MaxTuples);
  J.key("planted_bug");
  J.value(plantedBugName(Options.Oracles.Bug));
  J.key("mutations_per_seed");
  J.value(Options.MutationsPerSeed);
  J.key("reduce");
  J.value(Options.Reduce);
  J.endObject();
  J.key("findings");
  J.beginArray();
  for (const SeedReport &Seed : Outcome.Seeds) {
    if (Seed.Findings.empty())
      continue;
    J.beginObject();
    J.key("seed");
    J.value(Seed.Seed);
    J.key("bias");
    J.value(fuzzBiasName(Seed.Bias));
    J.key("repro");
    J.value(Seed.ReproName);
    J.key("findings");
    J.beginArray();
    for (const Finding &F : Seed.Findings) {
      J.beginObject();
      J.key("oracle");
      J.value(oracleKindName(F.Oracle));
      J.key("policy");
      J.value(F.Policy);
      J.key("detail");
      J.value(F.Detail);
      J.endObject();
    }
    J.endArray();
    J.key("reduced");
    J.beginObject();
    J.key("ran");
    J.value(Seed.Reduced);
    J.key("statements");
    J.value(Seed.Reduction.Statements);
    J.key("removed_units");
    J.value(Seed.Reduction.RemovedUnits);
    J.key("checks");
    J.value(Seed.Reduction.Checks);
    J.key("predicate_holds");
    J.value(Seed.Reduction.PredicateHolds);
    J.endObject();
    J.endObject();
  }
  J.endArray();
  J.key("finding_count");
  J.value(Outcome.TotalFindings);
  J.key("clean");
  J.value(Outcome.clean());
  J.endObject();

  // Coverage: how much of the range ran.  Budget-dependent by design.
  J.key("coverage");
  J.beginObject();
  J.key("seeds_planned");
  J.value(Outcome.SeedsPlanned);
  J.key("seeds_started");
  J.value(Outcome.SeedsStarted);
  J.key("budget_exhausted");
  J.value(Outcome.BudgetExhausted);
  J.key("checks_run");
  J.value(Outcome.ChecksRun);
  J.key("checks_skipped");
  J.value(Outcome.ChecksSkipped);
  J.key("mutants_checked");
  J.value(Outcome.MutantsChecked);
  J.endObject();

  J.key("timing");
  J.beginObject();
  J.key("seconds");
  J.value(Outcome.Seconds);
  J.endObject();
  J.endObject();
  Out << "\n";
}
