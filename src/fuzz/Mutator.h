//===- fuzz/Mutator.h - Frontend round-trip mutation fuzzing ----*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Byte-level mutation fuzzing of the textual-IR frontend.  Two contracts
/// are checked:
///
///  - **Never crash:** parseProgram on arbitrary bytes must return (with
///    diagnostics), never abort or corrupt memory.  Mutated inputs need not
///    parse — most will not — they only need to be *diagnosed*.
///
///  - **Round-trip fixpoint:** for any input that parses cleanly,
///    print(parse(S)) must itself parse cleanly and reach a fixpoint in one
///    step: print(parse(print(parse(S)))) == print(parse(S)).  This is the
///    canonical-form contract the reducer and cache fingerprints rely on.
///
/// Mutations are deterministic in (Seed, Input): a fixed menu of byte edits
/// (flip, insert, delete, duplicate-span, truncate) driven by support/Rng.
///
//===----------------------------------------------------------------------===//

#ifndef FUZZ_MUTATOR_H
#define FUZZ_MUTATOR_H

#include <cstdint>
#include <string>

namespace intro::fuzz {

/// Applies 1–4 random byte-level edits to \p Input.  Deterministic in
/// (Seed, Input).  The result may be arbitrarily malformed.
std::string mutateBytes(uint64_t Seed, const std::string &Input);

/// Outcome of one round-trip check (see roundTripCheck).
struct RoundTripOutcome {
  bool Parsed = false;     ///< Original input parsed cleanly.
  bool Fixpoint = false;   ///< print∘parse reached a one-step fixpoint.
  std::string Detail;      ///< Human-readable failure description (empty on
                           ///< success or clean parse failure).

  /// A clean parse *failure* is fine (the contract is diagnose-don't-crash);
  /// a parse success that fails to round-trip is a finding.
  bool ok() const { return !Parsed || Fixpoint; }
};

/// Checks the round-trip fixpoint contract on \p Source.  Does not throw on
/// malformed input.
RoundTripOutcome roundTripCheck(const std::string &Source);

} // namespace intro::fuzz

#endif // FUZZ_MUTATOR_H
