//===- fuzz/Oracles.h - Differential oracle harness -------------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential oracle harness: given one program, run the production
/// solver stack against every reference we own and report disagreements as
/// Findings.  The oracle taxonomy (DESIGN.md section 13):
///
///  - **Validity**: the program itself passes ir/Validator.h (a generator
///    bug, not a solver bug, but it must not poison the other oracles).
///  - **RoundTrip**: print∘parse is a one-step fixpoint (fuzz/Mutator.h).
///  - **Soundness**: every fact the concrete Interpreter observes is in the
///    solver's result, per policy flavor.
///  - **ReferenceEquivalence**: solver tuples == the literal Datalog
///    evaluation of Figure 3, per flavor (including the introspective split
///    and checked-cast semantics in thorough mode).
///  - **IntrospectiveSubset**: the refined second pass is pointwise at
///    least as precise as the insensitive first pass (metamorphic).
///  - **CacheWarmColdParity**: a Pass-A cache hit reproduces the cold run's
///    results exactly (metamorphic).
///  - **PortfolioParity**: the racing ladder returns the same rung and the
///    same bits as the sequential walk (metamorphic).
///  - **ServedLocalParity**: a job submitted through the serve daemon
///    reports the same deterministic bytes as the same job run locally
///    (metamorphic; forks children, so opt-in).
///
/// Budget-capped runs that do not complete are *skipped*, not findings — a
/// partial fixpoint cannot be compared (the PropertyTests convention).
///
/// A PlantedBug deliberately corrupts the solver-under-test's results so
/// the end-to-end pipeline (detect, reduce, triage) can be exercised and
/// tested against a known-bad double without touching the real solver.
///
//===----------------------------------------------------------------------===//

#ifndef FUZZ_ORACLES_H
#define FUZZ_ORACLES_H

#include "analysis/Result.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace intro {
class Program;
} // namespace intro

namespace intro::fuzz {

/// The oracle a finding came from.
enum class OracleKind : uint8_t {
  Validity,
  RoundTrip,
  Soundness,
  ReferenceEquivalence,
  IntrospectiveSubset,
  CacheWarmColdParity,
  PortfolioParity,
  ServedLocalParity,
};

/// Number of OracleKind values.
inline constexpr size_t NumOracleKinds = 8;

/// \returns a stable kebab-case name for \p Kind (reports, repro names).
const char *oracleKindName(OracleKind Kind);

/// Inverse of oracleKindName.  \returns true and stores into \p Kind when
/// \p Name matches exactly.
bool oracleKindFromName(std::string_view Name, OracleKind &Kind);

/// Which oracles to run, as a bitmask over OracleKind.
struct OracleSet {
  uint32_t Mask = 0;

  bool has(OracleKind Kind) const {
    return Mask & (1u << static_cast<uint32_t>(Kind));
  }
  OracleSet &enable(OracleKind Kind) {
    Mask |= 1u << static_cast<uint32_t>(Kind);
    return *this;
  }
  OracleSet &disable(OracleKind Kind) {
    Mask &= ~(1u << static_cast<uint32_t>(Kind));
    return *this;
  }

  /// Everything that runs in-process.  CacheWarmColdParity still requires
  /// OracleOptions::CacheDir to actually run (skipped otherwise).
  static OracleSet defaults();

  /// defaults() plus ServedLocalParity (forks supervised children; needs
  /// OracleOptions::ScratchDir for the daemon socket).
  static OracleSet all();
};

/// A deliberate result corruption in the solver-under-test path — the
/// "known bad solver" double that proves the harness can actually catch,
/// reduce, and triage a soundness bug.  Applied to Soundness and
/// ReferenceEquivalence runs only.
enum class PlantedBug : uint8_t {
  None,
  DropMaxHeapPerVar,  ///< Drop the largest heap from every var set with
                      ///< >= 2 elements (a classic lost-propagation bug).
  DropMaxCallTarget,  ///< Drop the largest target from every polymorphic
                      ///< call site (a lost dispatch edge).
  ForgetThrows,       ///< Drop all escaping-exception facts.
};

/// \returns a stable kebab-case name for \p Bug.
const char *plantedBugName(PlantedBug Bug);

/// Inverse of plantedBugName.
bool plantedBugFromName(std::string_view Name, PlantedBug &Bug);

/// Applies \p Bug to \p Result in place (projections and tuple dumps).
/// Exposed so fuzz_tests can assert the double misbehaves as documented.
void applyPlantedBug(PlantedBug Bug, PointsToResult &Result);

/// Harness configuration.
struct OracleOptions {
  OracleSet Oracles = OracleSet::defaults();
  /// Per-solver-run tuple cap.  Runs that exceed it are skipped, not
  /// failed (generated programs can be genuinely pathological).
  uint64_t MaxTuples = 2'000'000;
  /// Run the extra expensive flavors: call-site sensitivity, checked-cast
  /// equivalence, and the introspective-split Datalog comparison.
  bool Thorough = false;
  /// Scratch directory for the cache-parity oracle; empty skips it.
  std::string CacheDir;
  /// Scratch directory for the served-parity oracle's socket and the
  /// supervised children; empty skips it.
  std::string ScratchDir;
  /// Deliberate corruption of the solver under test (tests/CI smoke only).
  PlantedBug Bug = PlantedBug::None;
};

/// One oracle disagreement.  All fields are deterministic (no wall-clock,
/// no pointers), so findings are byte-stable across runs and machines.
struct Finding {
  OracleKind Oracle = OracleKind::Validity;
  std::string Policy; ///< Flavor or phase the disagreement occurred under.
  std::string Detail; ///< First violation, plus a count of further ones.
};

/// The harness verdict on one program.
struct OracleOutcome {
  std::vector<Finding> Findings; ///< Stable order: oracle taxonomy order.
  uint32_t ChecksRun = 0;        ///< Comparisons actually performed.
  uint32_t ChecksSkipped = 0;    ///< Budget-capped or unconfigured checks.

  bool clean() const { return Findings.empty(); }
};

/// Runs every enabled oracle on \p Prog.  \p Prog must be finalized; a
/// validation failure is reported as a Validity finding and the remaining
/// oracles are skipped (they assume a valid program).
OracleOutcome checkProgram(const Program &Prog, const OracleOptions &Options);

} // namespace intro::fuzz

#endif // FUZZ_ORACLES_H
