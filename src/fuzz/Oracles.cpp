//===- fuzz/Oracles.cpp - Differential oracle harness ---------------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Oracles.h"

#include "analysis/ContextPolicy.h"
#include "analysis/DatalogReference.h"
#include "analysis/Solver.h"
#include "cache/Fingerprint.h"
#include "cache/ResultCache.h"
#include "frontend/Printer.h"
#include "fuzz/Mutator.h"
#include "introspect/Driver.h"
#include "introspect/Resilient.h"
#include "ir/Interpreter.h"
#include "ir/Program.h"
#include "ir/Validator.h"
#include "serve/Client.h"
#include "serve/Server.h"
#include "support/SetUtils.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <sstream>
#include <thread>
#include <unistd.h>

using namespace intro;
using namespace intro::fuzz;

const char *intro::fuzz::oracleKindName(OracleKind Kind) {
  switch (Kind) {
  case OracleKind::Validity:
    return "validity";
  case OracleKind::RoundTrip:
    return "round-trip";
  case OracleKind::Soundness:
    return "soundness";
  case OracleKind::ReferenceEquivalence:
    return "reference-equivalence";
  case OracleKind::IntrospectiveSubset:
    return "introspective-subset";
  case OracleKind::CacheWarmColdParity:
    return "cache-parity";
  case OracleKind::PortfolioParity:
    return "portfolio-parity";
  case OracleKind::ServedLocalParity:
    return "served-parity";
  }
  return "unknown";
}

bool intro::fuzz::oracleKindFromName(std::string_view Name, OracleKind &Kind) {
  for (size_t Index = 0; Index < NumOracleKinds; ++Index) {
    OracleKind Candidate = static_cast<OracleKind>(Index);
    if (Name == oracleKindName(Candidate)) {
      Kind = Candidate;
      return true;
    }
  }
  return false;
}

OracleSet OracleSet::defaults() {
  OracleSet Set;
  Set.enable(OracleKind::Validity)
      .enable(OracleKind::RoundTrip)
      .enable(OracleKind::Soundness)
      .enable(OracleKind::ReferenceEquivalence)
      .enable(OracleKind::IntrospectiveSubset)
      .enable(OracleKind::CacheWarmColdParity)
      .enable(OracleKind::PortfolioParity);
  return Set;
}

OracleSet OracleSet::all() {
  return defaults().enable(OracleKind::ServedLocalParity);
}

const char *intro::fuzz::plantedBugName(PlantedBug Bug) {
  switch (Bug) {
  case PlantedBug::None:
    return "none";
  case PlantedBug::DropMaxHeapPerVar:
    return "drop-max-heap";
  case PlantedBug::DropMaxCallTarget:
    return "drop-max-call-target";
  case PlantedBug::ForgetThrows:
    return "forget-throws";
  }
  return "unknown";
}

bool intro::fuzz::plantedBugFromName(std::string_view Name, PlantedBug &Bug) {
  static constexpr PlantedBug All[] = {
      PlantedBug::None, PlantedBug::DropMaxHeapPerVar,
      PlantedBug::DropMaxCallTarget, PlantedBug::ForgetThrows};
  for (PlantedBug Candidate : All)
    if (Name == plantedBugName(Candidate)) {
      Bug = Candidate;
      return true;
    }
  return false;
}

void intro::fuzz::applyPlantedBug(PlantedBug Bug, PointsToResult &Result) {
  switch (Bug) {
  case PlantedBug::None:
    return;
  case PlantedBug::DropMaxHeapPerVar: {
    // Losing the last-propagated object from every multi-object set is the
    // shape of a real delta-propagation bug: single-source flows still
    // look right, joins silently lose facts.
    std::vector<std::pair<uint32_t, uint32_t>> Dropped;
    for (uint32_t Var = 0; Var < Result.VarHeaps.size(); ++Var) {
      SortedIdSet &Set = Result.VarHeaps[Var];
      if (Set.size() < 2)
        continue;
      Dropped.emplace_back(Var, Set.back());
      Set.pop_back();
    }
    auto WasDropped = [&](uint32_t Var, uint32_t Heap) {
      return std::binary_search(Dropped.begin(), Dropped.end(),
                                std::make_pair(Var, Heap));
    };
    Result.VarPointsTo.erase(
        std::remove_if(Result.VarPointsTo.begin(), Result.VarPointsTo.end(),
                       [&](const std::array<uint32_t, 4> &Tuple) {
                         return WasDropped(Tuple[0], Tuple[2]);
                       }),
        Result.VarPointsTo.end());
    return;
  }
  case PlantedBug::DropMaxCallTarget: {
    std::vector<std::pair<uint32_t, uint32_t>> Dropped;
    for (uint32_t Site = 0; Site < Result.SiteTargets.size(); ++Site) {
      SortedIdSet &Set = Result.SiteTargets[Site];
      if (Set.size() < 2)
        continue;
      Dropped.emplace_back(Site, Set.back());
      Set.pop_back();
    }
    auto WasDropped = [&](uint32_t Site, uint32_t Target) {
      return std::binary_search(Dropped.begin(), Dropped.end(),
                                std::make_pair(Site, Target));
    };
    Result.CallGraph.erase(
        std::remove_if(Result.CallGraph.begin(), Result.CallGraph.end(),
                       [&](const std::array<uint32_t, 4> &Tuple) {
                         return WasDropped(Tuple[0], Tuple[2]);
                       }),
        Result.CallGraph.end());
    return;
  }
  case PlantedBug::ForgetThrows:
    for (SortedIdSet &Set : Result.MethodThrows)
      Set.clear();
    Result.ThrowPointsTo.clear();
    return;
  }
}

namespace {

/// State threaded through one checkProgram call.
struct Harness {
  const Program &Prog;
  const OracleOptions &Opt;
  OracleOutcome Out;

  Harness(const Program &Prog, const OracleOptions &Opt)
      : Prog(Prog), Opt(Opt) {}

  void finding(OracleKind Oracle, std::string Policy, std::string Detail) {
    Out.Findings.push_back({Oracle, std::move(Policy), std::move(Detail)});
  }

  /// The solver-under-test: the production solver plus the planted bug.
  PointsToResult solveUnderTest(const ContextPolicy &Policy,
                                ContextTable &Table,
                                const SolverOptions &Options) {
    PointsToResult Result = solvePointsTo(Prog, Policy, Table, Options);
    applyPlantedBug(Opt.Bug, Result);
    return Result;
  }

  SolverOptions cappedOptions(bool KeepTuples = false) const {
    SolverOptions Options;
    Options.Budget.MaxTuples = Opt.MaxTuples;
    Options.KeepTuples = KeepTuples;
    return Options;
  }

  SolveBudget cappedBudget() const {
    SolveBudget Budget;
    Budget.MaxTuples = Opt.MaxTuples;
    return Budget;
  }

  /// The flavors the per-policy oracles sweep.
  std::vector<std::unique_ptr<ContextPolicy>> flavors() const {
    std::vector<std::unique_ptr<ContextPolicy>> Policies;
    Policies.push_back(makeInsensitivePolicy());
    Policies.push_back(makeObjectPolicy(Prog, 2, 1));
    if (Opt.Thorough) {
      Policies.push_back(makeCallSitePolicy(2, 1));
      Policies.push_back(makeTypePolicy(Prog, 2, 1));
    }
    return Policies;
  }

  bool checkValidity();
  void checkRoundTrip();
  void checkSoundness();
  void checkReferenceEquivalence();
  void checkIntrospectiveSubset();
  void checkCacheParity();
  void checkPortfolioParity();
  void checkServedParity();
};

/// Compares the context-insensitive projections of two results; \returns an
/// empty string when identical, else a description of the first divergence.
std::string describeResultDiff(const PointsToResult &A,
                               const PointsToResult &B) {
  if (A.Status != B.Status)
    return std::string("status ") + statusName(A.Status) + " vs " +
           statusName(B.Status);
  if (A.VarHeaps != B.VarHeaps)
    return "per-variable points-to sets differ";
  if (A.SiteTargets != B.SiteTargets)
    return "per-site call targets differ";
  if (A.MethodReachable != B.MethodReachable)
    return "reachable-method sets differ";
  if (A.MethodThrows != B.MethodThrows)
    return "escaping-exception sets differ";
  auto MapEqual = [](const auto &X, const auto &Y) {
    if (X.size() != Y.size())
      return false;
    for (const auto &[Key, Value] : X) {
      auto It = Y.find(Key);
      if (It == Y.end() || It->second != Value)
        return false;
    }
    return true;
  };
  if (!MapEqual(A.FieldHeaps, B.FieldHeaps))
    return "field points-to sets differ";
  if (!MapEqual(A.StaticFieldHeaps, B.StaticFieldHeaps))
    return "static-field points-to sets differ";
  return "";
}

bool Harness::checkValidity() {
  if (!Opt.Oracles.has(OracleKind::Validity))
    return true;
  ++Out.ChecksRun;
  std::vector<std::string> Errors = validateProgram(Prog);
  if (Errors.empty())
    return true;
  std::string Detail = Errors.front();
  if (Errors.size() > 1)
    Detail += " (and " + std::to_string(Errors.size() - 1) + " more)";
  finding(OracleKind::Validity, "", std::move(Detail));
  return false;
}

void Harness::checkRoundTrip() {
  if (!Opt.Oracles.has(OracleKind::RoundTrip))
    return;
  ++Out.ChecksRun;
  RoundTripOutcome RT = roundTripCheck(printProgram(Prog));
  if (!RT.Parsed) {
    finding(OracleKind::RoundTrip, "", "printed program fails to parse");
    return;
  }
  if (!RT.ok())
    finding(OracleKind::RoundTrip, "", RT.Detail);
}

void Harness::checkSoundness() {
  if (!Opt.Oracles.has(OracleKind::Soundness))
    return;
  DynamicFacts Facts = interpret(Prog);
  for (auto &Policy : flavors()) {
    ContextTable Table;
    PointsToResult Result = solveUnderTest(*Policy, Table, cappedOptions());
    if (!isCompleted(Result.Status)) {
      ++Out.ChecksSkipped;
      continue;
    }
    ++Out.ChecksRun;
    std::string First;
    uint64_t Violations = 0;
    auto Violation = [&](std::string Description) {
      if (First.empty())
        First = std::move(Description);
      ++Violations;
    };
    for (auto [Var, Heap] : Facts.VarPointsTo)
      if (!setContains(Result.pointsTo(Var), Heap.index()))
        Violation("dynamic fact lost: " + std::string(Prog.varName(Var)) +
                  " -> " + std::string(Prog.heapName(Heap)));
    for (MethodId Method : Facts.ReachedMethods)
      if (!Result.isReachable(Method))
        Violation("executed method unreachable: " +
                  std::string(Prog.methodName(Method)));
    for (auto [Site, Target] : Facts.CallEdges)
      if (!setContains(Result.callTargets(Site), Target.index()))
        Violation("dispatched edge lost: " + std::string(Prog.siteName(Site)) +
                  " -> " + std::string(Prog.methodName(Target)));
    for (auto [Field, Heap] : Facts.StaticFieldPointsTo) {
      auto It = Result.StaticFieldHeaps.find(Field.index());
      if (It == Result.StaticFieldHeaps.end() ||
          !setContains(It->second, Heap.index()))
        Violation("static-field fact lost: " +
                  std::string(Prog.fieldName(Field)) + " -> " +
                  std::string(Prog.heapName(Heap)));
    }
    for (auto [Method, Heap] : Facts.MethodThrows)
      if (!setContains(Result.throwsOf(Method), Heap.index()))
        Violation("escaping exception lost: " +
                  std::string(Prog.methodName(Method)) + " throws " +
                  std::string(Prog.heapName(Heap)));
    if (Violations > 0) {
      if (Violations > 1)
        First += " (and " + std::to_string(Violations - 1) + " more)";
      finding(OracleKind::Soundness, Policy->name(), std::move(First));
    }
  }
}

/// Compares one tuple relation; \returns empty when equal, else a count
/// summary.  \p SolverTuples is sorted in place.
template <size_t N>
std::string compareRelation(const char *Relation,
                            std::vector<std::array<uint32_t, N>> SolverTuples,
                            const std::vector<std::array<uint32_t, N>> &Ref) {
  std::sort(SolverTuples.begin(), SolverTuples.end());
  if (SolverTuples == Ref)
    return "";
  std::ostringstream S;
  S << Relation << ": solver " << SolverTuples.size() << " tuples, reference "
    << Ref.size();
  // Name the first asymmetric tuple to anchor triage.
  std::vector<std::array<uint32_t, N>> Diff;
  std::set_symmetric_difference(SolverTuples.begin(), SolverTuples.end(),
                                Ref.begin(), Ref.end(),
                                std::back_inserter(Diff));
  if (!Diff.empty()) {
    S << "; first diff (";
    for (size_t Index = 0; Index < N; ++Index)
      S << (Index ? "," : "") << Diff.front()[Index];
    S << ")";
  }
  return S.str();
}

void Harness::checkReferenceEquivalence() {
  if (!Opt.Oracles.has(OracleKind::ReferenceEquivalence))
    return;

  DatalogReferenceOptions RefOptions;
  RefOptions.MaxTuples = Opt.MaxTuples * 8;

  auto Compare = [&](const ContextPolicy &Policy, std::string FlavorName,
                     bool FilterCasts) {
    ContextTable Table;
    SolverOptions Options = cappedOptions(/*KeepTuples=*/true);
    Options.FilterCasts = FilterCasts;
    PointsToResult Solver = solveUnderTest(Policy, Table, Options);
    if (!isCompleted(Solver.Status)) {
      ++Out.ChecksSkipped;
      return;
    }
    DatalogReferenceOptions RO = RefOptions;
    RO.FilterCasts = FilterCasts;
    DatalogReferenceResult Ref = runDatalogReference(Prog, Policy, Table, RO);
    if (Ref.BudgetExceeded) {
      ++Out.ChecksSkipped;
      return;
    }
    ++Out.ChecksRun;
    for (std::string Diff :
         {compareRelation("VARPOINTSTO", Solver.VarPointsTo, Ref.VarPointsTo),
          compareRelation("FLDPOINTSTO", Solver.FieldPointsTo,
                          Ref.FieldPointsTo),
          compareRelation("REACHABLE", Solver.Reachable, Ref.Reachable),
          compareRelation("CALLGRAPH", Solver.CallGraph, Ref.CallGraph),
          compareRelation("THROWPOINTSTO", Solver.ThrowPointsTo,
                          Ref.ThrowPointsTo),
          compareRelation("SFLDPOINTSTO", Solver.StaticFieldPointsTo,
                          Ref.StaticFieldPointsTo)}) {
      if (!Diff.empty()) {
        finding(OracleKind::ReferenceEquivalence, FlavorName, std::move(Diff));
        return; // One finding per flavor keeps triage records bounded.
      }
    }
  };

  for (auto &Policy : flavors())
    Compare(*Policy, Policy->name(), /*FilterCasts=*/false);
  if (Opt.Thorough) {
    // Checked-cast semantics: the solver's filtered rule against the
    // reference's SUBTYPE-filtered rule.
    auto Insens = makeInsensitivePolicy();
    Compare(*Insens, std::string(Insens->name()) + "+filter-casts",
            /*FilterCasts=*/true);

    // The introspective split, with exceptions derived structurally from
    // the program (deterministic, no RNG): every third heap and every
    // (even site, target) pair stays coarse.
    auto Coarse = makeInsensitivePolicy();
    auto Refined = makeObjectPolicy(Prog, 2, 1);
    RefinementExceptions Exceptions;
    for (uint32_t Heap = 0; Heap < Prog.numHeaps(); Heap += 3)
      Exceptions.NoRefineHeaps.insert(Heap);
    {
      ContextTable Probe;
      PointsToResult Insens =
          solvePointsTo(Prog, *Coarse, Probe, cappedOptions());
      if (!isCompleted(Insens.Status)) {
        ++Out.ChecksSkipped;
        return;
      }
      for (uint32_t Site = 0; Site < Prog.numSites(); Site += 2)
        for (uint32_t Target : Insens.callTargets(SiteId(Site)))
          Exceptions.NoRefineSites.insert(
              RefinementExceptions::packSite(SiteId(Site), MethodId(Target)));
    }
    auto Intro =
        makeIntrospectivePolicy("fuzz-intro", *Coarse, *Refined, Exceptions);
    ContextTable Table;
    PointsToResult Solver =
        solveUnderTest(*Intro, Table, cappedOptions(/*KeepTuples=*/true));
    if (!isCompleted(Solver.Status)) {
      ++Out.ChecksSkipped;
      return;
    }
    DatalogReferenceResult Ref = runDatalogReference(
        Prog, *Coarse, *Refined, Exceptions, Table, RefOptions);
    if (Ref.BudgetExceeded) {
      ++Out.ChecksSkipped;
      return;
    }
    ++Out.ChecksRun;
    for (std::string Diff :
         {compareRelation("VARPOINTSTO", Solver.VarPointsTo, Ref.VarPointsTo),
          compareRelation("FLDPOINTSTO", Solver.FieldPointsTo,
                          Ref.FieldPointsTo),
          compareRelation("REACHABLE", Solver.Reachable, Ref.Reachable),
          compareRelation("CALLGRAPH", Solver.CallGraph, Ref.CallGraph)}) {
      if (!Diff.empty()) {
        finding(OracleKind::ReferenceEquivalence, "introspective-split",
                std::move(Diff));
        break;
      }
    }
  }
}

void Harness::checkIntrospectiveSubset() {
  if (!Opt.Oracles.has(OracleKind::IntrospectiveSubset))
    return;
  IntrospectiveOptions Options;
  Options.FirstPassBudget = cappedBudget();
  Options.SecondPassBudget = cappedBudget();
  auto Refined = makeObjectPolicy(Prog, 2, 1);
  IntrospectiveOutcome Outcome = runIntrospective(Prog, *Refined, Options);
  if (!isCompleted(Outcome.FirstPass.Status) ||
      !isCompleted(Outcome.SecondPass.Status)) {
    ++Out.ChecksSkipped;
    return;
  }
  ++Out.ChecksRun;
  std::string First;
  uint64_t Violations = 0;
  auto Violation = [&](std::string Description) {
    if (First.empty())
      First = std::move(Description);
    ++Violations;
  };
  for (uint32_t Var = 0; Var < Prog.numVars(); ++Var)
    for (uint32_t Heap : Outcome.SecondPass.pointsTo(VarId(Var)))
      if (!setContains(Outcome.FirstPass.pointsTo(VarId(Var)), Heap))
        Violation("refined points-to not a subset at " +
                  std::string(Prog.varName(VarId(Var))));
  for (uint32_t Site = 0; Site < Prog.numSites(); ++Site)
    for (uint32_t Target : Outcome.SecondPass.callTargets(SiteId(Site)))
      if (!setContains(Outcome.FirstPass.callTargets(SiteId(Site)), Target))
        Violation("refined call targets not a subset at " +
                  std::string(Prog.siteName(SiteId(Site))));
  for (uint32_t Method = 0; Method < Prog.numMethods(); ++Method)
    if (Outcome.SecondPass.isReachable(MethodId(Method)) &&
        !Outcome.FirstPass.isReachable(MethodId(Method)))
      Violation("refined reachability not a subset at " +
                std::string(Prog.methodName(MethodId(Method))));
  if (Violations > 0) {
    if (Violations > 1)
      First += " (and " + std::to_string(Violations - 1) + " more)";
    finding(OracleKind::IntrospectiveSubset, "2objH-IntroA", std::move(First));
  }
}

void Harness::checkCacheParity() {
  if (!Opt.Oracles.has(OracleKind::CacheWarmColdParity))
    return;
  if (Opt.CacheDir.empty()) {
    ++Out.ChecksSkipped;
    return;
  }
  cache::ResultCache Cache({Opt.CacheDir, /*MaxEntries=*/0});
  cache::Fingerprint Fp = cache::fingerprintProgram(Prog);
  IntrospectiveOptions Options;
  Options.FirstPassBudget = cappedBudget();
  Options.SecondPassBudget = cappedBudget();
  Options.Cache = &Cache;
  Options.CacheKey = &Fp;
  auto Refined = makeObjectPolicy(Prog, 2, 1);
  IntrospectiveOutcome Cold = runIntrospective(Prog, *Refined, Options);
  if (!isCompleted(Cold.FirstPass.Status)) {
    ++Out.ChecksSkipped; // Nothing stored; warm run would just re-miss.
    return;
  }
  IntrospectiveOutcome Warm = runIntrospective(Prog, *Refined, Options);
  if (Cache.stats().Hits == 0) {
    // The cold pass completed but nothing was served back: the cache
    // contract (completed miss is stored, stored entry hits) is broken.
    finding(OracleKind::CacheWarmColdParity, "pass-a",
            "completed first pass was not served back on the warm run");
    return;
  }
  ++Out.ChecksRun;
  if (std::string Diff =
          describeResultDiff(Cold.FirstPass, Warm.FirstPass);
      !Diff.empty()) {
    finding(OracleKind::CacheWarmColdParity, "pass-a", "warm != cold: " + Diff);
    return;
  }
  if (std::string Diff =
          describeResultDiff(Cold.SecondPass, Warm.SecondPass);
      !Diff.empty())
    finding(OracleKind::CacheWarmColdParity, "pass-b", "warm != cold: " + Diff);
}

void Harness::checkPortfolioParity() {
  if (!Opt.Oracles.has(OracleKind::PortfolioParity))
    return;
  ResilientOptions Options;
  Options.DeepBudget = cappedBudget();
  Options.RefinedBudget = cappedBudget();
  Options.FirstPassBudget = cappedBudget();
  auto Refined = makeObjectPolicy(Prog, 2, 1);
  ResilientOutcome Sequential = runResilient(Prog, *Refined, Options);
  Options.Portfolio = true;
  Options.Workers = 2;
  ResilientOutcome Racing = runResilient(Prog, *Refined, Options);
  ++Out.ChecksRun;
  if (Sequential.Level != Racing.Level) {
    finding(OracleKind::PortfolioParity, "ladder",
            std::string("winning rung differs: sequential ") +
                degradationLevelName(Sequential.Level) + " vs portfolio " +
                degradationLevelName(Racing.Level));
    return;
  }
  if (std::string Diff = describeResultDiff(Sequential.Result, Racing.Result);
      !Diff.empty())
    finding(OracleKind::PortfolioParity,
            degradationLevelName(Sequential.Level),
            "portfolio != sequential: " + Diff);
}

/// The run report's deterministic section as raw bytes (the ServeTests
/// contract): everything from the "deterministic" key up to the "timing"
/// key, with the per-attempt wall-clock values pinned.
std::string deterministicSlice(const std::string &ReportLine) {
  size_t Begin = ReportLine.find("\"deterministic\"");
  size_t End = ReportLine.find("\"timing\"");
  if (Begin == std::string::npos || End == std::string::npos || End < Begin)
    return ReportLine;
  std::string Slice = ReportLine.substr(Begin, End - Begin);
  for (const char *Key :
       {"\"seconds\":", "\"total_seconds\":", "\"metric_seconds\":"}) {
    size_t KeyLen = std::strlen(Key);
    for (size_t At = Slice.find(Key); At != std::string::npos;
         At = Slice.find(Key, At)) {
      size_t ValueBegin = At + KeyLen;
      size_t ValueEnd = ValueBegin;
      while (ValueEnd < Slice.size() && Slice[ValueEnd] != ',' &&
             Slice[ValueEnd] != '}')
        ++ValueEnd;
      Slice.replace(ValueBegin, ValueEnd - ValueBegin, "0");
      At = ValueBegin;
    }
  }
  return Slice;
}

void Harness::checkServedParity() {
  if (!Opt.Oracles.has(OracleKind::ServedLocalParity))
    return;
  if (Opt.ScratchDir.empty()) {
    ++Out.ChecksSkipped;
    return;
  }
  static std::atomic<uint64_t> SocketSeq{0};
  std::string Socket = Opt.ScratchDir + "/fz" + std::to_string(::getpid()) +
                       "-" + std::to_string(SocketSeq.fetch_add(1)) + ".sock";
  std::string Source = printProgram(Prog);

  serve::ServerOptions Options;
  Options.SocketPath = Socket;
  Options.Batch.Limits.WallDeadlineSeconds = 60;
  Options.Batch.SleepMs = [](double) {};
  Options.Workers = 1;
  serve::Server Daemon(std::move(Options));
  std::string Error;
  if (!Daemon.start(Error)) {
    ++Out.ChecksSkipped;
    return;
  }
  std::atomic<bool> Stop{false};
  std::thread Runner([&] { Daemon.run(Stop); });

  serve::SubmitOutcome Served;
  bool Submitted = false;
  {
    serve::Client Client;
    if (Client.connect(Socket, Error))
      Submitted =
          Client.submit("fuzz", Source, 0, "", nullptr, Served, Error);
  }
  Stop.store(true);
  Runner.join();
  if (!Submitted) {
    ++Out.ChecksSkipped;
    return;
  }

  supervise::JobSpec Spec;
  Spec.Name = "fuzz";
  Spec.Source = Source;
  std::string Transcript;
  supervise::JobHooks Hooks;
  Hooks.OnChildOutput = [&](uint32_t, std::string_view Chunk) {
    Transcript.append(Chunk);
  };
  supervise::BatchOptions Batch;
  Batch.Limits.WallDeadlineSeconds = 60;
  Batch.SleepMs = [](double) {};
  supervise::JobResult Local =
      supervise::runSupervisedJob(Spec, /*JobIndex=*/0, Batch, Hooks);

  const char *LocalClass = supervise::jobOutcomeClassName(Local.FinalClass);
  if (Served.FinalClass != LocalClass) {
    finding(OracleKind::ServedLocalParity, "class",
            "served job classified '" + Served.FinalClass + "' vs local '" +
                LocalClass + "'");
    return;
  }
  if (Served.FinalClass != "clean" || Served.FinalReportLine.empty()) {
    ++Out.ChecksSkipped; // A hard child death is the supervisor's business.
    return;
  }
  std::string LocalReport;
  size_t Begin = 0;
  while (Begin < Transcript.size()) {
    size_t End = Transcript.find('\n', Begin);
    if (End == std::string::npos)
      End = Transcript.size();
    std::string Line = Transcript.substr(Begin, End - Begin);
    if (Line.find("\"schema\"") != std::string::npos)
      LocalReport = Line;
    Begin = End + 1;
  }
  if (LocalReport.empty()) {
    ++Out.ChecksSkipped;
    return;
  }
  ++Out.ChecksRun;
  if (deterministicSlice(Served.FinalReportLine) !=
      deterministicSlice(LocalReport))
    finding(OracleKind::ServedLocalParity, "report",
            "deterministic report sections differ between served and local");
}

} // namespace

OracleOutcome intro::fuzz::checkProgram(const Program &Prog,
                                        const OracleOptions &Options) {
  Harness H(Prog, Options);
  if (!H.checkValidity())
    return std::move(H.Out);
  H.checkRoundTrip();
  H.checkSoundness();
  H.checkReferenceEquivalence();
  H.checkIntrospectiveSubset();
  H.checkCacheParity();
  H.checkPortfolioParity();
  H.checkServedParity();
  return std::move(H.Out);
}
