//===- fuzz/Campaign.h - Deterministic fuzzing campaigns --------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The campaign driver behind tools/intro_fuzz: sweep a contiguous seed
/// range, generate one biased program per seed (fuzz/Generator.h), run the
/// differential oracles on it (fuzz/Oracles.h), optionally byte-mutate its
/// text through the frontend (fuzz/Mutator.h), reduce the first finding per
/// seed (fuzz/Reducer.h), and file repro + triage artifacts in the
/// quarantine style (`<name>.ir` + `<name>.triage.json` + `<name>.reason.txt`).
///
/// Determinism contract: per-seed results depend only on (seed, options) —
/// never on worker count or timing.  Workers claim seed indices from an
/// atomic counter, so the set of seeds *started* is always a contiguous
/// prefix of the range; the wall-clock budget only decides where that
/// prefix ends (recorded in the report's coverage section, outside the
/// deterministic bytes).  Without a budget, the whole range runs and the
/// report's deterministic section is byte-identical across runs and worker
/// counts.
///
//===----------------------------------------------------------------------===//

#ifndef FUZZ_CAMPAIGN_H
#define FUZZ_CAMPAIGN_H

#include "fuzz/Generator.h"
#include "fuzz/Oracles.h"
#include "fuzz/Reducer.h"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace intro::fuzz {

struct CampaignOptions {
  uint64_t Seed = 1;    ///< First seed of the range.
  uint64_t Count = 100; ///< Number of seeds ([Seed, Seed+Count)).
  unsigned Workers = 1; ///< Concurrent seed tasks.
  /// Stop *launching* new seeds after this many seconds (in-flight seeds
  /// finish).  0 disables the budget.
  double BudgetSeconds = 0;
  /// Shrink the first finding of each failing seed with the reducer.
  bool Reduce = true;
  /// Reducer check budget per finding (each check re-runs an oracle).
  uint32_t ReduceMaxChecks = 600;
  /// Directory for repro/triage artifacts; empty writes nothing.
  std::string ReproDir;
  /// Byte-level frontend mutants checked per seed (0 disables).
  uint32_t MutationsPerSeed = 0;
  OracleOptions Oracles;
  FuzzProgramOptions Program;
};

/// The per-seed verdict.  Everything here is deterministic in
/// (seed, options).
struct SeedReport {
  uint64_t Seed = 0;
  FuzzBias Bias = FuzzBias::Uniform;
  std::vector<Finding> Findings;
  uint32_t ChecksRun = 0;
  uint32_t ChecksSkipped = 0;
  uint32_t MutantsChecked = 0;
  /// Reduction of the first finding (when Reduce and the seed failed).
  bool Reduced = false;
  ReduceOutcome Reduction;
  /// Artifact basename under ReproDir ("" when none was written).
  std::string ReproName;
};

struct CampaignOutcome {
  /// One report per started seed, ascending — always a contiguous prefix
  /// of the requested range.
  std::vector<SeedReport> Seeds;
  uint64_t SeedsPlanned = 0;
  uint64_t SeedsStarted = 0;
  uint64_t TotalFindings = 0;
  uint64_t ChecksRun = 0;
  uint64_t ChecksSkipped = 0;
  uint64_t MutantsChecked = 0;
  bool BudgetExhausted = false; ///< The budget cut the range short.
  double Seconds = 0;           ///< Wall clock (timing section only).

  bool clean() const { return TotalFindings == 0; }
};

/// Runs the campaign.  Thread-safe per the determinism contract above.
CampaignOutcome runCampaign(const CampaignOptions &Options);

/// Runs the oracles on one already-parsed program (corpus replay).  When
/// \p Reduce is set and a finding appears, it is reduced like a generated
/// seed's would be.  \p Name labels artifacts and report rows.
SeedReport replayProgram(const Program &Prog, const std::string &Name,
                         const CampaignOptions &Options);

/// Writes the `intro-fuzz-report-v1` document: a "deterministic" section
/// (config echo + per-seed findings + reductions), a "coverage" section
/// (how much of the range actually ran — budget-dependent), and a "timing"
/// section (wall clock).
void writeCampaignReportJson(std::ostream &Out,
                             const CampaignOptions &Options,
                             const CampaignOutcome &Outcome);

} // namespace intro::fuzz

#endif // FUZZ_CAMPAIGN_H
