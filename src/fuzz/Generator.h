//===- fuzz/Generator.h - Adversarial random programs -----------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential fuzzer's program generator.  workload/Random.h draws
/// every instruction independently, which explores *local* corner cases but
/// rarely builds the global shapes where the layered optimizations can go
/// wrong: hub sets dense enough to promote to bitmaps, call chains deep
/// enough to exercise context truncation, cast lattices that split dense
/// sets, hierarchies degenerate enough to stress dispatch, and empty or
/// duplicated structure that tickles delta-propagation bookkeeping.
///
/// Each FuzzBias plants one such shape deliberately (sized by the seed) and
/// then sprinkles uniform random instructions on top, so every generated
/// program is both *structured* (the pathology is really there) and *noisy*
/// (the surrounding code varies per seed).  Everything is deterministic in
/// (Seed, Bias, Options): same inputs, byte-identical printProgram output.
///
//===----------------------------------------------------------------------===//

#ifndef FUZZ_GENERATOR_H
#define FUZZ_GENERATOR_H

#include "ir/Program.h"

#include <cstdint>
#include <string_view>

namespace intro::fuzz {

/// The structural pathology a generated program is biased toward.
enum class FuzzBias : uint8_t {
  Uniform,     ///< No planted shape: independent random draws (baseline).
  HubObjects,  ///< Many allocation sites funneled into one variable and one
               ///< field, pushing points-to sets past the IdSet promotion
               ///< threshold (batched-union / bitmap paths).
  DeepCalls,   ///< A deep call chain threading one payload down and back
               ///< up, stressing context truncation and return flow.
  CastHeavy,   ///< Loads feeding casts that sometimes succeed and sometimes
               ///< fail, over sibling types (cast-filter / precision paths).
  DegenerateHierarchy, ///< A deep single-inheritance chain plus a wide flat
               ///< fan, with overrides at every level and super-calls
               ///< through the fringe (dispatch / LOOKUP paths).
  CornerShapes, ///< Empty bodies, duplicate instructions, self-moves,
               ///< self-stores, dispatch with no receivers, unreachable
               ///< recursion (empty/duplicate-edge bookkeeping).
};

/// Number of FuzzBias values.
inline constexpr size_t NumFuzzBiases = 6;

/// \returns a stable kebab-case name for \p Bias (reports, repro names).
const char *fuzzBiasName(FuzzBias Bias);

/// Inverse of fuzzBiasName.  \returns true and stores into \p Bias when
/// \p Name matches exactly.
bool fuzzBiasFromName(std::string_view Name, FuzzBias &Bias);

/// The default campaign rotation: seed N gets bias N mod NumFuzzBiases, so
/// any contiguous seed range covers every knob.
FuzzBias biasForSeed(uint64_t Seed);

/// Size knobs.  The defaults keep programs small enough that the Datalog
/// reference stays affordable per program (hundreds of programs per CI
/// minute) while the planted shapes stay big enough to matter — e.g. the
/// hub bias must cross IdSet::DefaultPromoteThreshold.
struct FuzzProgramOptions {
  uint32_t NumClasses = 6;          ///< Random classes beside the planted ones.
  uint32_t NumVirtualSigs = 3;      ///< Random virtual method names.
  uint32_t NumStaticMethods = 3;    ///< Random static helpers.
  uint32_t InstructionsPerBody = 7; ///< Approximate random body length.
  uint32_t LocalsPerMethod = 5;     ///< Local variable pool per method.
  uint32_t HubAllocSites = 64;      ///< Hub bias: sites funneled together
                                    ///< (above the IdSet threshold of 48).
  uint32_t CallChainDepth = 24;     ///< Deep-call bias: chain length.
  uint32_t CastChainLength = 16;    ///< Cast bias: casts per snippet.
  uint32_t HierarchyDepth = 12;     ///< Degenerate bias: chain depth.
  uint32_t HierarchyWidth = 12;     ///< Degenerate bias: flat fan width.
};

/// Generates the program for (\p Seed, \p Bias).  The result is finalized
/// and passes ir/Validator.h (asserted by fuzz_tests over many seeds).
Program generateFuzzProgram(uint64_t Seed, FuzzBias Bias,
                            const FuzzProgramOptions &Options =
                                FuzzProgramOptions());

} // namespace intro::fuzz

#endif // FUZZ_GENERATOR_H
