//===- cache/Fingerprint.h - Canonical program fingerprints -----*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A content address for a Program: a 128-bit hash over its *normalized*
/// facts — the extracted input relations (ir/Facts.h, raw dense entity
/// ids), the entity-table shapes, and every entity's name resolved to its
/// text.  Name *handles* (StringInterner indices) never enter the hash, so
/// the fingerprint is independent of interner insertion order: two Programs
/// whose interners assigned handles differently (e.g. a frontend that
/// pre-interns strings in another order) still fingerprint identically as
/// long as their entities, names, and facts agree.
///
/// The fingerprint is what makes the Pass-A result cache (ResultCache.h)
/// sound: a cached PointsToResult stores raw dense ids, so an entry may
/// only be replayed against a Program whose id assignment and facts are
/// exactly those it was computed from — which is precisely what two equal
/// fingerprints certify (up to hash collision; 128 bits of a well-mixed
/// non-cryptographic hash, fine for a trusted cache directory, not a
/// defense against adversarial inputs).
///
//===----------------------------------------------------------------------===//

#ifndef CACHE_FINGERPRINT_H
#define CACHE_FINGERPRINT_H

#include <cstdint>
#include <string>
#include <string_view>

namespace intro {

class Program;

namespace cache {

/// A 128-bit content address of a Program.
struct Fingerprint {
  uint64_t Hi = 0;
  uint64_t Lo = 0;

  friend bool operator==(const Fingerprint &A, const Fingerprint &B) {
    return A.Hi == B.Hi && A.Lo == B.Lo;
  }
  friend bool operator!=(const Fingerprint &A, const Fingerprint &B) {
    return !(A == B);
  }
};

/// Computes the canonical fingerprint of \p Prog (which must be finalized):
/// entity-space sizes, per-entity name text, entry methods, and every
/// extracted input relation, mixed into 128 bits.  Deterministic across
/// processes, platforms, and interner insertion orders.
Fingerprint fingerprintProgram(const Program &Prog);

/// \returns \p Fp as 32 lowercase hex digits (Hi then Lo); the cache's
/// on-disk entry name.
std::string toHex(const Fingerprint &Fp);

/// Inverse of toHex.  \returns false if \p Text is not exactly 32 hex
/// digits.
bool fingerprintFromHex(std::string_view Text, Fingerprint &Fp);

} // namespace cache
} // namespace intro

#endif // CACHE_FINGERPRINT_H
