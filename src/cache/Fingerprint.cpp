//===- cache/Fingerprint.cpp - Canonical program fingerprints -------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "cache/Fingerprint.h"

#include "ir/Facts.h"
#include "ir/Program.h"

#include <array>

using namespace intro;
using namespace intro::cache;

namespace {

/// splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
uint64_t mix64(uint64_t X) {
  X ^= X >> 30;
  X *= 0xbf58476d1ce4e5b9ull;
  X ^= X >> 27;
  X *= 0x94d049bb133111ebull;
  X ^= X >> 31;
  return X;
}

/// 128-bit accumulator: two independently seeded 64-bit lanes, each mixed
/// with every input word.  Order-sensitive by construction — the relations
/// are hashed in a fixed schema order, and each relation's tuples in their
/// (deterministic) extraction order.
struct Hasher {
  uint64_t Hi = 0x243f6a8885a308d3ull; // pi digits: arbitrary distinct seeds
  uint64_t Lo = 0x13198a2e03707344ull;

  void u64(uint64_t V) {
    Lo = mix64(Lo ^ V);
    Hi = mix64(Hi + V * 0x9e3779b97f4a7c15ull + 0x452821e638d01377ull);
  }
  void u32(uint32_t V) { u64(V); }

  /// Hashes the text (FNV-1a folded in), never an interner handle.
  void str(std::string_view Text) {
    u64(Text.size());
    uint64_t Acc = 1469598103934665603ull;
    for (unsigned char C : Text) {
      Acc ^= C;
      Acc *= 1099511628211ull;
    }
    u64(Acc);
  }

  template <size_t N> void tuples(const std::vector<std::array<uint32_t, N>> &Rel) {
    u64(Rel.size());
    for (const std::array<uint32_t, N> &Row : Rel)
      for (uint32_t Column : Row)
        u32(Column);
  }
  void tuples(const std::vector<uint32_t> &Rel) {
    u64(Rel.size());
    for (uint32_t Value : Rel)
      u32(Value);
  }
};

} // namespace

Fingerprint cache::fingerprintProgram(const Program &Prog) {
  Hasher H;

  // Entity-table shapes first: two programs whose facts happen to coincide
  // but whose id spaces differ (e.g. an extra never-referenced variable)
  // must not collide — results are dense vectors over these spaces.
  H.u64(Prog.numTypes());
  H.u64(Prog.numFields());
  H.u64(Prog.numSignatures());
  H.u64(Prog.numMethods());
  H.u64(Prog.numVars());
  H.u64(Prog.numHeaps());
  H.u64(Prog.numSites());

  // Per-entity name text and structural columns, in dense-id order.  Name
  // handles are resolved through Program::name() so interner insertion
  // order cannot leak into the hash.
  for (uint32_t Index = 0; Index < Prog.numTypes(); ++Index) {
    const TypeInfo &Info = Prog.type(TypeId(Index));
    H.str(Prog.name(Info.Name));
    H.u32(Info.Super.raw());
  }
  for (uint32_t Index = 0; Index < Prog.numFields(); ++Index) {
    const FieldInfo &Info = Prog.field(FieldId(Index));
    H.str(Prog.name(Info.Name));
    H.u32(Info.Owner.raw());
  }
  for (uint32_t Index = 0; Index < Prog.numSignatures(); ++Index) {
    const SigInfo &Info = Prog.signature(SigId(Index));
    H.str(Prog.name(Info.Name));
    H.u32(Info.Arity);
  }
  for (uint32_t Index = 0; Index < Prog.numMethods(); ++Index) {
    const MethodInfo &Info = Prog.method(MethodId(Index));
    H.str(Prog.name(Info.Name));
    H.u32(Info.Owner.raw());
    H.u32(Info.Sig.raw());
    H.u32(Info.IsStatic ? 1 : 0);
  }
  for (uint32_t Index = 0; Index < Prog.numVars(); ++Index) {
    const VarInfo &Info = Prog.var(VarId(Index));
    H.str(Prog.name(Info.Name));
    H.u32(Info.Owner.raw());
  }
  for (uint32_t Index = 0; Index < Prog.numHeaps(); ++Index) {
    const HeapInfo &Info = Prog.heap(HeapId(Index));
    H.str(Prog.name(Info.Name));
    H.u32(Info.Type.raw());
    H.u32(Info.InMethod.raw());
  }
  for (uint32_t Index = 0; Index < Prog.numSites(); ++Index) {
    const SiteInfo &Info = Prog.site(SiteId(Index));
    H.str(Prog.name(Info.Name));
    H.u32(Info.IsStatic ? 1 : 0);
    H.u32(Info.CatchType.raw());
  }

  // The analysis-relevant structure: every input relation of the model, in
  // a fixed schema order.  extractFacts walks the dense tables, so tuple
  // order is a pure function of the Program's content.
  ProgramFacts Facts = extractFacts(Prog);
  H.tuples(Facts.Alloc);
  H.tuples(Facts.Move);
  H.tuples(Facts.Cast);
  H.tuples(Facts.Subtype);
  H.tuples(Facts.Load);
  H.tuples(Facts.Store);
  H.tuples(Facts.SLoad);
  H.tuples(Facts.SStore);
  H.tuples(Facts.Throw);
  H.tuples(Facts.SiteInMethod);
  H.tuples(Facts.Catch);
  H.tuples(Facts.NoCatch);
  H.tuples(Facts.VCall);
  H.tuples(Facts.SCall);
  H.tuples(Facts.FormalArg);
  H.tuples(Facts.ActualArg);
  H.tuples(Facts.FormalReturn);
  H.tuples(Facts.ActualReturn);
  H.tuples(Facts.ThisVar);
  H.tuples(Facts.HeapType);
  H.tuples(Facts.Lookup);
  H.tuples(Facts.EntryMethods);

  Fingerprint Fp;
  // One more mix round so the final state is not a raw accumulator value.
  Fp.Hi = mix64(H.Hi ^ H.Lo);
  Fp.Lo = mix64(H.Lo + 0x9e3779b97f4a7c15ull * H.Hi);
  return Fp;
}

std::string cache::toHex(const Fingerprint &Fp) {
  static const char Digits[] = "0123456789abcdef";
  std::string Text(32, '0');
  for (int Nibble = 0; Nibble < 16; ++Nibble) {
    Text[15 - Nibble] = Digits[(Fp.Hi >> (Nibble * 4)) & 0xF];
    Text[31 - Nibble] = Digits[(Fp.Lo >> (Nibble * 4)) & 0xF];
  }
  return Text;
}

bool cache::fingerprintFromHex(std::string_view Text, Fingerprint &Fp) {
  if (Text.size() != 32)
    return false;
  uint64_t Words[2] = {0, 0};
  for (size_t Index = 0; Index < 32; ++Index) {
    char C = Text[Index];
    uint64_t Nibble;
    if (C >= '0' && C <= '9')
      Nibble = static_cast<uint64_t>(C - '0');
    else if (C >= 'a' && C <= 'f')
      Nibble = static_cast<uint64_t>(C - 'a' + 10);
    else if (C >= 'A' && C <= 'F')
      Nibble = static_cast<uint64_t>(C - 'A' + 10);
    else
      return false;
    Words[Index / 16] = (Words[Index / 16] << 4) | Nibble;
  }
  Fp.Hi = Words[0];
  Fp.Lo = Words[1];
  return true;
}
