//===- cache/ResultCache.cpp - Content-addressed Pass-A store -------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "cache/ResultCache.h"

#include "support/Trace.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#include <unistd.h>

using namespace intro;
using namespace intro::cache;

namespace fs = std::filesystem;

namespace {

//===----------------------------------------------------------------------===//
// Byte-level encoding.  Explicit little-endian, no struct memcpy — the
// format must not depend on host padding or endianness.
//===----------------------------------------------------------------------===//

uint64_t fnv1a(const uint8_t *Data, size_t Size) {
  uint64_t Acc = 1469598103934665603ull;
  for (size_t Index = 0; Index < Size; ++Index) {
    Acc ^= Data[Index];
    Acc *= 1099511628211ull;
  }
  return Acc;
}

struct ByteWriter {
  std::vector<uint8_t> Bytes;

  void u8(uint8_t V) { Bytes.push_back(V); }
  void u32(uint32_t V) {
    for (int Shift = 0; Shift < 32; Shift += 8)
      Bytes.push_back(static_cast<uint8_t>(V >> Shift));
  }
  void u64(uint64_t V) {
    for (int Shift = 0; Shift < 64; Shift += 8)
      Bytes.push_back(static_cast<uint8_t>(V >> Shift));
  }
  void f64(double V) {
    uint64_t Raw;
    static_assert(sizeof(Raw) == sizeof(V));
    std::memcpy(&Raw, &V, sizeof(Raw));
    u64(Raw);
  }
  void str(const std::string &Text) {
    u64(Text.size());
    Bytes.insert(Bytes.end(), Text.begin(), Text.end());
  }
  void idSet(const SortedIdSet &Set) {
    u64(Set.size());
    for (uint32_t Id : Set)
      u32(Id);
  }
  void idSetVector(const std::vector<SortedIdSet> &Sets) {
    u64(Sets.size());
    for (const SortedIdSet &Set : Sets)
      idSet(Set);
  }
  void u64Vector(const std::vector<uint64_t> &Values) {
    u64(Values.size());
    for (uint64_t Value : Values)
      u64(Value);
  }
  void boolVector(const std::vector<bool> &Values) {
    u64(Values.size());
    for (bool Value : Values)
      u8(Value ? 1 : 0);
  }
  template <size_t N>
  void tupleVector(const std::vector<std::array<uint32_t, N>> &Rows) {
    u64(Rows.size());
    for (const std::array<uint32_t, N> &Row : Rows)
      for (uint32_t Column : Row)
        u32(Column);
  }
};

/// Bounds-checked reader.  Every accessor fails soft: once Ok is false all
/// further reads return zero values, and the caller checks Ok (plus full
/// consumption) at the end — decoding garbage never touches memory out of
/// range.
struct ByteReader {
  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
  bool Ok = true;

  ByteReader(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}

  bool take(size_t Count) {
    if (!Ok || Count > Size - Pos) {
      Ok = false;
      return false;
    }
    return true;
  }
  uint8_t u8() {
    if (!take(1))
      return 0;
    return Data[Pos++];
  }
  uint32_t u32() {
    if (!take(4))
      return 0;
    uint32_t V = 0;
    for (int Shift = 0; Shift < 32; Shift += 8)
      V |= static_cast<uint32_t>(Data[Pos++]) << Shift;
    return V;
  }
  uint64_t u64() {
    if (!take(8))
      return 0;
    uint64_t V = 0;
    for (int Shift = 0; Shift < 64; Shift += 8)
      V |= static_cast<uint64_t>(Data[Pos++]) << Shift;
    return V;
  }
  double f64() {
    uint64_t Raw = u64();
    double V;
    std::memcpy(&V, &Raw, sizeof(V));
    return V;
  }
  std::string str() {
    uint64_t Count = u64();
    if (!take(Count))
      return {};
    std::string Text(reinterpret_cast<const char *>(Data + Pos), Count);
    Pos += Count;
    return Text;
  }
  /// Guard for element counts: a corrupted length field must not trigger a
  /// huge up-front allocation.  Each element of the claimed count occupies
  /// at least MinElemBytes in the remaining payload, so anything larger is
  /// provably corrupt.
  bool plausibleCount(uint64_t Count, size_t MinElemBytes) {
    if (!Ok || Count > (Size - Pos) / MinElemBytes) {
      Ok = false;
      return false;
    }
    return true;
  }
  SortedIdSet idSet() {
    uint64_t Count = u64();
    SortedIdSet Set;
    if (!plausibleCount(Count, 4))
      return Set;
    Set.reserve(Count);
    for (uint64_t Index = 0; Index < Count && Ok; ++Index)
      Set.push_back(u32());
    return Set;
  }
  std::vector<SortedIdSet> idSetVector() {
    uint64_t Count = u64();
    std::vector<SortedIdSet> Sets;
    if (!plausibleCount(Count, 8))
      return Sets;
    Sets.reserve(Count);
    for (uint64_t Index = 0; Index < Count && Ok; ++Index)
      Sets.push_back(idSet());
    return Sets;
  }
  std::vector<uint64_t> u64Vector() {
    uint64_t Count = u64();
    std::vector<uint64_t> Values;
    if (!plausibleCount(Count, 8))
      return Values;
    Values.reserve(Count);
    for (uint64_t Index = 0; Index < Count && Ok; ++Index)
      Values.push_back(u64());
    return Values;
  }
  std::vector<bool> boolVector() {
    uint64_t Count = u64();
    std::vector<bool> Values;
    if (!plausibleCount(Count, 1))
      return Values;
    Values.reserve(Count);
    for (uint64_t Index = 0; Index < Count && Ok; ++Index)
      Values.push_back(u8() != 0);
    return Values;
  }
  template <size_t N> std::vector<std::array<uint32_t, N>> tupleVector() {
    uint64_t Count = u64();
    std::vector<std::array<uint32_t, N>> Rows;
    if (!plausibleCount(Count, 4 * N))
      return Rows;
    Rows.reserve(Count);
    for (uint64_t Index = 0; Index < Count && Ok; ++Index) {
      std::array<uint32_t, N> Row;
      for (size_t Column = 0; Column < N; ++Column)
        Row[Column] = u32();
      Rows.push_back(Row);
    }
    return Rows;
  }
};

//===----------------------------------------------------------------------===//
// Section payloads.
//===----------------------------------------------------------------------===//

// The field list below is part of the on-disk entry format: adding a field
// here would orphan every entry written by earlier builds.  Propagation
// diagnostics (SolverStats::BatchUnions / ElementProbes /
// DensePointsToSets) are deliberately NOT encoded — they describe the
// solver's internal strategy, not the result, and must read as zero on a
// cache hit.
void encodeStats(ByteWriter &W, const SolverStats &Stats) {
  W.f64(Stats.Seconds);
  W.u64(Stats.VarPointsToTuples);
  W.u64(Stats.FieldPointsToTuples);
  W.u64(Stats.ThrowPointsToTuples);
  W.u64(Stats.StaticFieldTuples);
  W.u64(Stats.NumVarNodes);
  W.u64(Stats.NumFieldNodes);
  W.u64(Stats.NumObjects);
  W.u64(Stats.NumContexts);
  W.u64(Stats.NumHeapContexts);
  W.u64(Stats.ReachableMethodContexts);
  W.u64(Stats.CallGraphEdges);
  W.u64(Stats.WorklistPops);
  W.u64(Stats.ApproxBytes);
}

SolverStats decodeStats(ByteReader &R) {
  SolverStats Stats;
  Stats.Seconds = R.f64();
  Stats.VarPointsToTuples = R.u64();
  Stats.FieldPointsToTuples = R.u64();
  Stats.ThrowPointsToTuples = R.u64();
  Stats.StaticFieldTuples = R.u64();
  Stats.NumVarNodes = R.u64();
  Stats.NumFieldNodes = R.u64();
  Stats.NumObjects = R.u64();
  Stats.NumContexts = R.u64();
  Stats.NumHeapContexts = R.u64();
  Stats.ReachableMethodContexts = R.u64();
  Stats.CallGraphEdges = R.u64();
  Stats.WorklistPops = R.u64();
  Stats.ApproxBytes = R.u64();
  return Stats;
}

std::vector<uint8_t> encodeResultSection(const PointsToResult &Result) {
  ByteWriter W;
  W.u8(static_cast<uint8_t>(Result.Status));
  encodeStats(W, Result.Stats);
  W.str(Result.AnalysisName);
  W.idSetVector(Result.VarHeaps);

  // Unordered maps are emitted in sorted-key order: equal results must
  // encode to identical bytes regardless of hash-table iteration order.
  {
    std::vector<uint64_t> Keys;
    Keys.reserve(Result.FieldHeaps.size());
    for (const auto &[Key, Set] : Result.FieldHeaps)
      Keys.push_back(Key);
    std::sort(Keys.begin(), Keys.end());
    W.u64(Keys.size());
    for (uint64_t Key : Keys) {
      W.u64(Key);
      W.idSet(Result.FieldHeaps.at(Key));
    }
  }

  W.boolVector(Result.MethodReachable);

  {
    std::vector<uint32_t> Keys;
    Keys.reserve(Result.StaticFieldHeaps.size());
    for (const auto &[Key, Set] : Result.StaticFieldHeaps)
      Keys.push_back(Key);
    std::sort(Keys.begin(), Keys.end());
    W.u64(Keys.size());
    for (uint32_t Key : Keys) {
      W.u32(Key);
      W.idSet(Result.StaticFieldHeaps.at(Key));
    }
  }

  W.idSetVector(Result.MethodThrows);
  W.idSetVector(Result.SiteTargets);

  W.tupleVector(Result.VarPointsTo);
  W.tupleVector(Result.FieldPointsTo);
  W.tupleVector(Result.Reachable);
  W.tupleVector(Result.CallGraph);
  W.tupleVector(Result.ThrowPointsTo);
  W.tupleVector(Result.StaticFieldPointsTo);
  return std::move(W.Bytes);
}

bool decodeResultSection(const uint8_t *Data, size_t Size,
                         PointsToResult &Result) {
  ByteReader R(Data, Size);
  uint8_t RawStatus = R.u8();
  if (RawStatus > static_cast<uint8_t>(SolveStatus::Cancelled))
    return false;
  Result.Status = static_cast<SolveStatus>(RawStatus);
  Result.Stats = decodeStats(R);
  Result.AnalysisName = R.str();
  Result.VarHeaps = R.idSetVector();

  {
    uint64_t Count = R.u64();
    if (!R.plausibleCount(Count, 16))
      return false;
    Result.FieldHeaps.clear();
    Result.FieldHeaps.reserve(Count);
    for (uint64_t Index = 0; Index < Count && R.Ok; ++Index) {
      uint64_t Key = R.u64();
      Result.FieldHeaps[Key] = R.idSet();
    }
  }

  Result.MethodReachable = R.boolVector();

  {
    uint64_t Count = R.u64();
    if (!R.plausibleCount(Count, 12))
      return false;
    Result.StaticFieldHeaps.clear();
    Result.StaticFieldHeaps.reserve(Count);
    for (uint64_t Index = 0; Index < Count && R.Ok; ++Index) {
      uint32_t Key = R.u32();
      Result.StaticFieldHeaps[Key] = R.idSet();
    }
  }

  Result.MethodThrows = R.idSetVector();
  Result.SiteTargets = R.idSetVector();

  Result.VarPointsTo = R.tupleVector<4>();
  Result.FieldPointsTo = R.tupleVector<5>();
  Result.Reachable = R.tupleVector<2>();
  Result.CallGraph = R.tupleVector<4>();
  Result.ThrowPointsTo = R.tupleVector<4>();
  Result.StaticFieldPointsTo = R.tupleVector<3>();

  return R.Ok && R.Pos == R.Size;
}

std::vector<uint8_t> encodeMetricsSection(const IntrospectionMetrics &M) {
  ByteWriter W;
  W.u64Vector(M.InFlow);
  W.u64Vector(M.MethodTotalVolume);
  W.u64Vector(M.MethodMaxVarPointsTo);
  W.u64Vector(M.ObjectMaxFieldPointsTo);
  W.u64Vector(M.ObjectTotalFieldPointsTo);
  W.u64Vector(M.MethodMaxVarFieldPointsTo);
  W.u64Vector(M.PointedByVars);
  W.u64Vector(M.PointedByObjs);
  return std::move(W.Bytes);
}

bool decodeMetricsSection(const uint8_t *Data, size_t Size,
                          IntrospectionMetrics &M) {
  ByteReader R(Data, Size);
  M.InFlow = R.u64Vector();
  M.MethodTotalVolume = R.u64Vector();
  M.MethodMaxVarPointsTo = R.u64Vector();
  M.ObjectMaxFieldPointsTo = R.u64Vector();
  M.ObjectTotalFieldPointsTo = R.u64Vector();
  M.MethodMaxVarFieldPointsTo = R.u64Vector();
  M.PointedByVars = R.u64Vector();
  M.PointedByObjs = R.u64Vector();
  return R.Ok && R.Pos == R.Size;
}

} // namespace

//===----------------------------------------------------------------------===//
// Whole-entry encode/decode.
//===----------------------------------------------------------------------===//

std::vector<uint8_t> cache::encodeEntry(const Fingerprint &Fp,
                                        const CachedPassA &Entry) {
  ByteWriter W;
  W.Bytes.insert(W.Bytes.end(), EntryMagic, EntryMagic + sizeof(EntryMagic));
  W.u32(FormatVersion);
  W.u64(Fp.Hi);
  W.u64(Fp.Lo);

  std::vector<std::pair<uint32_t, std::vector<uint8_t>>> Sections;
  Sections.emplace_back(SectionResult, encodeResultSection(Entry.Insens));
  Sections.emplace_back(SectionMetrics, encodeMetricsSection(Entry.Metrics));

  W.u32(static_cast<uint32_t>(Sections.size()));
  for (const auto &[Tag, Payload] : Sections) {
    W.u32(Tag);
    W.u64(Payload.size());
    W.u64(fnv1a(Payload.data(), Payload.size()));
    W.Bytes.insert(W.Bytes.end(), Payload.begin(), Payload.end());
  }
  return std::move(W.Bytes);
}

bool cache::decodeEntry(const std::vector<uint8_t> &Bytes,
                        const Fingerprint &Expect, CachedPassA &Out) {
  ByteReader R(Bytes.data(), Bytes.size());
  if (!R.take(sizeof(EntryMagic)))
    return false;
  if (std::memcmp(Bytes.data(), EntryMagic, sizeof(EntryMagic)) != 0)
    return false;
  R.Pos = sizeof(EntryMagic);

  if (R.u32() != FormatVersion)
    return false;
  Fingerprint Echo;
  Echo.Hi = R.u64();
  Echo.Lo = R.u64();
  if (!R.Ok || Echo != Expect)
    return false;

  uint32_t SectionCount = R.u32();
  bool HaveResult = false, HaveMetrics = false;
  CachedPassA Decoded;
  for (uint32_t Index = 0; Index < SectionCount && R.Ok; ++Index) {
    uint32_t Tag = R.u32();
    uint64_t Length = R.u64();
    uint64_t Checksum = R.u64();
    if (!R.take(Length))
      return false;
    const uint8_t *Payload = Bytes.data() + R.Pos;
    R.Pos += Length;
    if (fnv1a(Payload, Length) != Checksum)
      return false;
    switch (Tag) {
    case SectionResult:
      if (!decodeResultSection(Payload, Length, Decoded.Insens))
        return false;
      HaveResult = true;
      break;
    case SectionMetrics:
      if (!decodeMetricsSection(Payload, Length, Decoded.Metrics))
        return false;
      HaveMetrics = true;
      break;
    default:
      // Unknown (future) sections are skipped: the checksum already
      // validated them, and version skew in the other direction is caught
      // by FormatVersion.
      break;
    }
  }
  if (!R.Ok || R.Pos != R.Size || !HaveResult || !HaveMetrics)
    return false;
  Out = std::move(Decoded);
  return true;
}

//===----------------------------------------------------------------------===//
// ResultCache.
//===----------------------------------------------------------------------===//

std::string ResultCache::entryPath(const Fingerprint &Fp) const {
  return (fs::path(Opts.Directory) / (toHex(Fp) + ".pac")).string();
}

bool ResultCache::lookup(const Fingerprint &Fp, CachedPassA &Out) {
  TRACE_SPAN("cache.lookup");
  TRACE_COUNTER("cache.probe", 1);
  NProbes.fetch_add(1, std::memory_order_relaxed);

  std::string Path = entryPath(Fp);
  std::vector<uint8_t> Bytes;
  {
    std::ifstream In(Path, std::ios::binary);
    if (!In) {
      TRACE_COUNTER("cache.miss", 1);
      NMisses.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    In.seekg(0, std::ios::end);
    std::streamoff Size = In.tellg();
    if (Size < 0) {
      TRACE_COUNTER("cache.miss", 1);
      NMisses.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    In.seekg(0, std::ios::beg);
    Bytes.resize(static_cast<size_t>(Size));
    if (Size > 0 && !In.read(reinterpret_cast<char *>(Bytes.data()), Size)) {
      TRACE_COUNTER("cache.miss", 1);
      TRACE_COUNTER("cache.miss_corrupt", 1);
      NMisses.fetch_add(1, std::memory_order_relaxed);
      NCorrupt.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }

  if (!decodeEntry(Bytes, Fp, Out)) {
    // The file existed but did not decode: short write, bit rot, foreign
    // format, or version skew.  All of these are "corrupt" for counting
    // purposes — and all are a plain miss for the caller.
    TRACE_COUNTER("cache.miss", 1);
    TRACE_COUNTER("cache.miss_corrupt", 1);
    NMisses.fetch_add(1, std::memory_order_relaxed);
    NCorrupt.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  TRACE_COUNTER("cache.hit", 1);
  NHits.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool ResultCache::store(const Fingerprint &Fp, const CachedPassA &Entry) {
  TRACE_SPAN("cache.store");
  std::lock_guard<std::mutex> Lock(StoreMutex);

  std::error_code Ec;
  fs::create_directories(Opts.Directory, Ec);
  if (Ec) {
    TRACE_COUNTER("cache.store_failure", 1);
    NStoreFailures.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  std::vector<uint8_t> Bytes = encodeEntry(Fp, Entry);

  // Unique temp name per process and per store: concurrent writers each
  // write their own temp file, and the final rename is atomic within the
  // directory — last write wins, readers never see a torn entry.
  std::string TempPath =
      (fs::path(Opts.Directory) /
       (toHex(Fp) + ".tmp." + std::to_string(::getpid()) + "." +
        std::to_string(TempSeq.fetch_add(1, std::memory_order_relaxed))))
          .string();
  {
    std::ofstream TmpOut(TempPath, std::ios::binary | std::ios::trunc);
    if (!TmpOut ||
        !TmpOut.write(reinterpret_cast<const char *>(Bytes.data()),
                      static_cast<std::streamsize>(Bytes.size()))) {
      TRACE_COUNTER("cache.store_failure", 1);
      NStoreFailures.fetch_add(1, std::memory_order_relaxed);
      std::remove(TempPath.c_str());
      return false;
    }
  }
  std::string FinalPath = entryPath(Fp);
  fs::rename(TempPath, FinalPath, Ec);
  if (Ec) {
    // The publish step itself failed (read-only directory, the final path
    // occupied by a directory, a filesystem boundary).  Distinct instant
    // from the plain counter so a trace shows *which* store died and with
    // what errno — a silent miss here used to look like cache churn.
    TRACE_INSTANT("cache.store_rename_failed", Ec.value());
    TRACE_COUNTER("cache.store_failure", 1);
    NStoreFailures.fetch_add(1, std::memory_order_relaxed);
    std::remove(TempPath.c_str());
    return false;
  }

  TRACE_COUNTER("cache.store", 1);
  NStores.fetch_add(1, std::memory_order_relaxed);

  if (Opts.MaxEntries > 0) {
    // Deterministic eviction: sorted-filename order, never the entry just
    // stored.  (A pure LRU would depend on probe timing; this cap is a
    // size guard, not a tuning knob.)
    std::string KeepName = toHex(Fp) + ".pac";
    std::vector<std::string> Names;
    for (const fs::directory_entry &DirEntry :
         fs::directory_iterator(Opts.Directory, Ec)) {
      if (Ec)
        break;
      std::string Name = DirEntry.path().filename().string();
      if (Name.size() == 36 && Name.ends_with(".pac"))
        Names.push_back(Name);
    }
    if (Names.size() > Opts.MaxEntries) {
      std::sort(Names.begin(), Names.end());
      size_t Surplus = Names.size() - Opts.MaxEntries;
      for (const std::string &Name : Names) {
        if (Surplus == 0)
          break;
        if (Name == KeepName)
          continue;
        fs::remove(fs::path(Opts.Directory) / Name, Ec);
        if (!Ec) {
          --Surplus;
          TRACE_COUNTER("cache.evict", 1);
          NEvictions.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  }
  return true;
}

CacheStats ResultCache::stats() const {
  CacheStats Stats;
  Stats.Probes = NProbes.load(std::memory_order_relaxed);
  Stats.Hits = NHits.load(std::memory_order_relaxed);
  Stats.Misses = NMisses.load(std::memory_order_relaxed);
  Stats.CorruptEntries = NCorrupt.load(std::memory_order_relaxed);
  Stats.Stores = NStores.load(std::memory_order_relaxed);
  Stats.StoreFailures = NStoreFailures.load(std::memory_order_relaxed);
  Stats.Evictions = NEvictions.load(std::memory_order_relaxed);
  return Stats;
}
