//===- cache/ResultCache.h - Content-addressed Pass-A store -----*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An on-disk, content-addressed store for the expensive half of the
/// two-pass analysis: the context-insensitive Pass-A PointsToResult plus
/// the IntrospectionMetrics computed from it.  Entries are keyed by the
/// canonical Fingerprint of the analyzed Program (cache/Fingerprint.h), so
/// a warm run — a repeated batch job, a supervised retry, an escalateBelow
/// relaunch, or a flavor sweep that shares one insensitive pre-analysis —
/// reloads Pass A with one read instead of re-solving it.
///
/// Entry format (all integers little-endian, explicit byte encoding):
///
///   magic        8 bytes   "IPACHE01"
///   version      u32       FormatVersion
///   fingerprint  2 × u64   Hi, Lo — echo of the key, re-checked on load
///   sections     u32       section count
///   per section:
///     tag        u32       SectionResult / SectionMetrics
///     length     u64       payload bytes
///     checksum   u64       FNV-1a over the payload
///     payload    length bytes
///
/// **Corruption is a miss, never a crash.**  Every decode failure — short
/// file, bad magic, version skew, fingerprint mismatch, checksum mismatch,
/// truncated or over-long payload — makes lookup() return false; the
/// caller re-solves and re-stores.  The cache can therefore be deleted,
/// truncated, or bit-flipped at any time without affecting correctness.
///
/// **Writers are atomic.**  store() encodes into a unique temp file in the
/// cache directory and renames it over the final name, so concurrent
/// writers are last-write-wins and a reader never observes a torn entry.
///
//===----------------------------------------------------------------------===//

#ifndef CACHE_RESULTCACHE_H
#define CACHE_RESULTCACHE_H

#include "analysis/Result.h"
#include "cache/Fingerprint.h"
#include "introspect/Metrics.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace intro {
namespace cache {

/// On-disk format version; bumped whenever the entry encoding changes.
/// Entries with any other version are misses.
constexpr uint32_t FormatVersion = 1;

/// Entry magic: identifies the file type and, informally, the format era.
constexpr char EntryMagic[8] = {'I', 'P', 'A', 'C', 'H', 'E', '0', '1'};

/// Section tags.
constexpr uint32_t SectionResult = 1;  ///< Serialized PointsToResult.
constexpr uint32_t SectionMetrics = 2; ///< Serialized IntrospectionMetrics.

/// What one cache entry holds: the Pass-A result and its metrics.
struct CachedPassA {
  PointsToResult Insens;
  IntrospectionMetrics Metrics;
};

/// Monotonic counters of one ResultCache instance.
struct CacheStats {
  uint64_t Probes = 0;         ///< lookup() calls.
  uint64_t Hits = 0;           ///< Probes that returned a valid entry.
  uint64_t Misses = 0;         ///< Probes that found nothing usable.
  uint64_t CorruptEntries = 0; ///< Misses caused by an unreadable entry.
  uint64_t Stores = 0;         ///< Successful store() calls.
  uint64_t StoreFailures = 0;  ///< store() calls that could not persist.
  uint64_t Evictions = 0;      ///< Entries removed by the MaxEntries cap.
};

/// A content-addressed Pass-A result store over one directory.
///
/// Thread-safe: lookups touch only immutable files and atomic counters;
/// stores serialize on an internal mutex (within one process) and are
/// rename-atomic across processes.
class ResultCache {
public:
  struct Options {
    std::string Directory; ///< Cache directory; created on first store.
    /// Maximum number of entries kept after a store; 0 = unlimited.
    /// Eviction removes surplus entries in sorted-filename order (never
    /// the entry just stored), so it is deterministic for a given
    /// directory population.
    uint64_t MaxEntries = 0;
  };

  explicit ResultCache(Options Opts) : Opts(std::move(Opts)) {}

  /// Probes the cache for \p Fp.  On a hit, fills \p Out and \returns
  /// true.  Unreadable entries of any kind are a miss.
  bool lookup(const Fingerprint &Fp, CachedPassA &Out);

  /// Persists \p Entry under \p Fp (temp file + rename; last write wins).
  /// \returns true if the entry is on disk afterwards.
  bool store(const Fingerprint &Fp, const CachedPassA &Entry);

  /// \returns the path the entry for \p Fp lives at (whether or not it
  /// exists): `<dir>/<hex32>.pac`.
  std::string entryPath(const Fingerprint &Fp) const;

  /// Snapshot of this instance's counters.
  CacheStats stats() const;

  const Options &options() const { return Opts; }

private:
  Options Opts;
  std::mutex StoreMutex; ///< Serializes store+evict within this process.

  std::atomic<uint64_t> NProbes{0};
  std::atomic<uint64_t> NHits{0};
  std::atomic<uint64_t> NMisses{0};
  std::atomic<uint64_t> NCorrupt{0};
  std::atomic<uint64_t> NStores{0};
  std::atomic<uint64_t> NStoreFailures{0};
  std::atomic<uint64_t> NEvictions{0};
  std::atomic<uint64_t> TempSeq{0}; ///< Uniquifies temp names in-process.
};

/// Encodes \p Entry into the on-disk byte format for key \p Fp.
/// Deterministic: unordered containers are emitted in sorted-key order, so
/// equal entries encode to identical bytes.  Exposed for the adversarial
/// tests, which corrupt the bytes directly.
std::vector<uint8_t> encodeEntry(const Fingerprint &Fp,
                                 const CachedPassA &Entry);

/// Decodes \p Bytes, verifying magic, version, the fingerprint echo
/// against \p Expect, and every section checksum.  \returns true and fills
/// \p Out only when the whole entry is intact.
bool decodeEntry(const std::vector<uint8_t> &Bytes, const Fingerprint &Expect,
                 CachedPassA &Out);

} // namespace cache
} // namespace intro

#endif // CACHE_RESULTCACHE_H
