//===- frontend/Parser.cpp - Textual IR parser ----------------------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include "frontend/Lexer.h"
#include "ir/ProgramBuilder.h"

#include <map>
#include <optional>

using namespace intro;

namespace {

/// Structural (syntax-only) representation collected in the first pass.
struct MethodDecl {
  std::string Name;
  std::vector<std::string> Params;
  std::string ReturnName; ///< Empty if the method has no `->` clause.
  bool IsStatic = false;
  bool IsEntry = false;
  uint32_t Line = 0;
  size_t BodyBegin = 0; ///< Token index just after the body's '{'.
  size_t BodyEnd = 0;   ///< Token index of the body's '}'.
};

struct ClassDecl {
  std::string Name;
  std::string Super; ///< Empty for hierarchy roots.
  std::vector<std::string> Fields;
  std::vector<MethodDecl> Methods;
  uint32_t Line = 0;
};

class Parser {
public:
  explicit Parser(std::string_view Source) : Tokens(tokenize(Source)) {}

  ParseResult run() {
    parseStructure();
    if (Errors.empty())
      buildDeclarations();
    if (Errors.empty())
      buildBodies();
    ParseResult Result;
    if (Errors.empty())
      Result.Prog = Builder.take();
    Result.Errors = std::move(Errors);
    return Result;
  }

private:
  // --- Token helpers ----------------------------------------------------

  const Token &peek(size_t Ahead = 0) const {
    size_t Index = Pos + Ahead;
    return Index < Tokens.size() ? Tokens[Index] : Tokens.back();
  }
  const Token &advance() {
    const Token &T = peek();
    if (Pos + 1 < Tokens.size())
      ++Pos;
    return T;
  }
  bool at(TokenKind Kind) const { return peek().Kind == Kind; }
  bool atWord(std::string_view Word) const {
    return at(TokenKind::Identifier) && peek().Text == Word;
  }
  bool eat(TokenKind Kind) {
    if (!at(Kind))
      return false;
    advance();
    return true;
  }
  bool eatWord(std::string_view Word) {
    if (!atWord(Word))
      return false;
    advance();
    return true;
  }

  void error(std::string Message) {
    Errors.push_back("line " + std::to_string(peek().Line) + ": " +
                     std::move(Message));
  }

  /// Expects an identifier; returns its text or empty on error.
  std::string expectIdent(const char *What) {
    if (!at(TokenKind::Identifier)) {
      error(std::string("expected ") + What);
      return "";
    }
    return std::string(advance().Text);
  }

  // --- Pass 1: structure -------------------------------------------------

  void parseStructure() {
    while (!at(TokenKind::EndOfFile) && Errors.empty()) {
      if (at(TokenKind::Error)) {
        error("unexpected character '" + std::string(peek().Text) + "'");
        return;
      }
      if (!eatWord("class")) {
        error("expected 'class'");
        return;
      }
      ClassDecl Decl;
      Decl.Line = peek().Line;
      Decl.Name = expectIdent("class name");
      if (eatWord("extends"))
        Decl.Super = expectIdent("superclass name");
      if (eat(TokenKind::LBrace)) {
        while (!at(TokenKind::RBrace) && !at(TokenKind::EndOfFile) &&
               Errors.empty())
          parseMember(Decl);
        if (!eat(TokenKind::RBrace))
          error("expected '}' closing class " + Decl.Name);
      }
      Classes.push_back(std::move(Decl));
    }
  }

  void parseMember(ClassDecl &Decl) {
    if (eatWord("field")) {
      Decl.Fields.push_back(expectIdent("field name"));
      return;
    }
    MethodDecl Method;
    Method.Line = peek().Line;
    Method.IsEntry = eatWord("entry");
    Method.IsStatic = eatWord("static");
    if (!eatWord("method")) {
      error("expected 'field' or 'method' in class " + Decl.Name);
      return;
    }
    Method.Name = expectIdent("method name");
    if (!eat(TokenKind::LParen)) {
      error("expected '(' after method name");
      return;
    }
    if (!at(TokenKind::RParen)) {
      do {
        Method.Params.push_back(expectIdent("parameter name"));
      } while (eat(TokenKind::Comma));
    }
    if (!eat(TokenKind::RParen)) {
      error("expected ')' after parameter list");
      return;
    }
    if (eat(TokenKind::Arrow))
      Method.ReturnName = expectIdent("return variable name");
    if (!eat(TokenKind::LBrace)) {
      error("expected '{' starting method body");
      return;
    }
    // Record the body's token span; statements contain no nested braces.
    Method.BodyBegin = Pos;
    while (!at(TokenKind::RBrace) && !at(TokenKind::EndOfFile)) {
      if (at(TokenKind::Error)) {
        error("unexpected character '" + std::string(peek().Text) +
              "' in method " + Method.Name);
        return;
      }
      advance();
    }
    Method.BodyEnd = Pos;
    if (!eat(TokenKind::RBrace)) {
      error("expected '}' closing method " + Method.Name);
      return;
    }
    Decl.Methods.push_back(std::move(Method));
  }

  // --- Pass 2: declarations ------------------------------------------------

  void buildDeclarations() {
    // Add classes in an order compatible with their extends edges.
    std::map<std::string, TypeId> TypeByName;
    size_t Added = 0;
    std::vector<bool> Done(Classes.size(), false);
    while (Added < Classes.size()) {
      bool Progress = false;
      for (size_t Index = 0; Index < Classes.size(); ++Index) {
        if (Done[Index])
          continue;
        const ClassDecl &Decl = Classes[Index];
        if (TypeByName.count(Decl.Name)) {
          Errors.push_back("line " + std::to_string(Decl.Line) +
                           ": duplicate class '" + Decl.Name + "'");
          return;
        }
        TypeId Super;
        if (!Decl.Super.empty()) {
          auto It = TypeByName.find(Decl.Super);
          if (It == TypeByName.end())
            continue; // Superclass not added yet; retry next round.
          Super = It->second;
        }
        TypeByName[Decl.Name] = Builder.cls(Decl.Name, Super);
        Done[Index] = true;
        ++Added;
        Progress = true;
      }
      if (!Progress) {
        for (size_t Index = 0; Index < Classes.size(); ++Index)
          if (!Done[Index])
            Errors.push_back(
                "line " + std::to_string(Classes[Index].Line) + ": class '" +
                Classes[Index].Name + "' has unknown or cyclic superclass '" +
                Classes[Index].Super + "'");
        return;
      }
    }
    Types = std::move(TypeByName);

    for (const ClassDecl &Decl : Classes) {
      TypeId Owner = Types.at(Decl.Name);
      for (const std::string &Field : Decl.Fields) {
        auto Key = std::make_pair(Owner.index(), Field);
        if (FieldsByName.count(Key)) {
          Errors.push_back("duplicate field '" + Decl.Name + "#" + Field +
                           "'");
          continue;
        }
        FieldsByName[Key] = Builder.field(Owner, Field);
      }
      for (const MethodDecl &Method : Decl.Methods) {
        MethodBuilder MB = Builder.methodNamed(
            Owner, Method.Name, Method.Params, Method.IsStatic,
            Method.ReturnName);
        if (Method.IsEntry) {
          if (!Method.IsStatic)
            Errors.push_back("line " + std::to_string(Method.Line) +
                             ": entry method '" + Method.Name +
                             "' must be static");
          Builder.entry(MB.id());
        }
        MethodsByName[{Owner.index(), Method.Name,
                       static_cast<uint32_t>(Method.Params.size())}] = MB.id();
      }
    }
  }

  // --- Pass 3: bodies ----------------------------------------------------------

  void buildBodies() {
    for (const ClassDecl &Decl : Classes) {
      TypeId Owner = Types.at(Decl.Name);
      for (const MethodDecl &Method : Decl.Methods)
        buildBody(Owner, Method);
    }
  }

  void buildBody(TypeId Owner, const MethodDecl &Decl) {
    MethodId Method =
        MethodsByName.at({Owner.index(), Decl.Name,
                          static_cast<uint32_t>(Decl.Params.size())});
    MethodBuilder MB = Builder.bodyOf(Method);

    // Name -> variable environment, seeded with this/formals/return.
    Vars.clear();
    const MethodInfo &Info = Builder.current().method(Method);
    if (!Info.IsStatic)
      Vars["this"] = Info.This;
    for (size_t Index = 0; Index < Decl.Params.size(); ++Index)
      Vars[Decl.Params[Index]] = Info.Formals[Index];
    if (Info.Return.isValid() && !Decl.ReturnName.empty())
      Vars[Decl.ReturnName] = Info.Return;

    Pos = Decl.BodyBegin;
    while (Pos < Decl.BodyEnd && Errors.empty())
      parseStatement(MB);
  }

  VarId getVar(MethodBuilder &MB, const std::string &Name) {
    auto [It, Inserted] = Vars.emplace(Name, VarId());
    if (Inserted)
      It->second = MB.local(Name);
    return It->second;
  }

  std::optional<TypeId> lookupType(const std::string &Name) {
    auto It = Types.find(Name);
    if (It == Types.end()) {
      error("unknown class '" + Name + "'");
      return std::nullopt;
    }
    return It->second;
  }

  /// Parses `ID "#" ID` after the dot of a load/store and resolves the
  /// field.  Assumes the class name was already consumed into \p ClassName.
  std::optional<FieldId> resolveField(const std::string &ClassName) {
    if (!eat(TokenKind::Hash)) {
      error("expected '#' in field reference");
      return std::nullopt;
    }
    std::string FieldName = expectIdent("field name");
    auto Type = lookupType(ClassName);
    if (!Type)
      return std::nullopt;
    auto It = FieldsByName.find({Type->index(), FieldName});
    if (It == FieldsByName.end()) {
      error("unknown field '" + ClassName + "#" + FieldName + "'");
      return std::nullopt;
    }
    return It->second;
  }

  std::vector<VarId> parseArgs(MethodBuilder &MB) {
    std::vector<VarId> Args;
    if (!eat(TokenKind::LParen)) {
      error("expected '(' in call");
      return Args;
    }
    if (!at(TokenKind::RParen)) {
      do {
        Args.push_back(getVar(MB, expectIdent("argument variable")));
      } while (eat(TokenKind::Comma));
    }
    if (!eat(TokenKind::RParen))
      error("expected ')' closing call");
    return Args;
  }

  /// Parses an optional trailing `catch (Type) var` clause for \p Site.
  void parseCatchClause(MethodBuilder &MB, SiteId Site) {
    if (!eatWord("catch"))
      return;
    if (!eat(TokenKind::LParen)) {
      error("expected '(' after 'catch'");
      return;
    }
    auto Type = lookupType(expectIdent("caught exception class"));
    if (!eat(TokenKind::RParen)) {
      error("expected ')' closing catch type");
      return;
    }
    VarId Var = getVar(MB, expectIdent("catch variable"));
    if (Type)
      MB.attachCatch(Site, *Type, Var);
  }

  void parseCall(MethodBuilder &MB, VarId Result, const std::string &Callee) {
    if (eat(TokenKind::Dot)) {
      // receiver.method(args)
      std::string MethodName = expectIdent("method name");
      VarId Base = getVar(MB, Callee);
      std::vector<VarId> Args = parseArgs(MB);
      SiteId Site = MB.vcall(Result, Base, MethodName, Args);
      parseCatchClause(MB, Site);
      return;
    }
    if (eat(TokenKind::ColonColon)) {
      // Class::method(args)
      std::string MethodName = expectIdent("static method name");
      std::vector<VarId> Args = parseArgs(MB);
      auto Type = lookupType(Callee);
      if (!Type)
        return;
      auto It = MethodsByName.find(
          {Type->index(), MethodName, static_cast<uint32_t>(Args.size())});
      if (It == MethodsByName.end()) {
        error("unknown static method '" + Callee + "::" + MethodName + "/" +
              std::to_string(Args.size()) + "'");
        return;
      }
      if (!Builder.current().method(It->second).IsStatic) {
        error("'" + Callee + "::" + MethodName + "' is not static");
        return;
      }
      SiteId Site = MB.scall(Result, It->second, Args);
      parseCatchClause(MB, Site);
      return;
    }
    error("expected '.' or '::' in call");
  }

  void parseStatement(MethodBuilder &MB) {
    if (eatWord("return")) {
      VarId Value = getVar(MB, expectIdent("returned variable"));
      MB.move(MB.returnVar(), Value);
      return;
    }
    if (eatWord("throw")) {
      MB.throwStmt(getVar(MB, expectIdent("thrown variable")));
      return;
    }

    std::string First = expectIdent("statement");
    if (First.empty())
      return;

    if (at(TokenKind::Hash)) {
      // Static store: Class#field = x.
      auto Field = resolveField(First);
      if (!Field)
        return;
      if (!eat(TokenKind::Equals)) {
        error("expected '=' in static store");
        return;
      }
      MB.sstore(*Field, getVar(MB, expectIdent("stored variable")));
      return;
    }

    if (eat(TokenKind::Dot)) {
      // Either a store `y.C#f = x` or a result-less virtual call `y.m(..)`.
      std::string Second = expectIdent("field class or method name");
      if (at(TokenKind::Hash)) {
        auto Field = resolveField(Second);
        if (!Field)
          return;
        if (!eat(TokenKind::Equals)) {
          error("expected '=' in store");
          return;
        }
        VarId From = getVar(MB, expectIdent("stored variable"));
        MB.store(getVar(MB, First), *Field, From);
        return;
      }
      VarId Base = getVar(MB, First);
      std::vector<VarId> Args = parseArgs(MB);
      SiteId Site = MB.vcall(VarId::invalid(), Base, Second, Args);
      parseCatchClause(MB, Site);
      return;
    }
    if (at(TokenKind::ColonColon)) {
      // Result-less static call `C::m(..)`.
      parseCall(MB, VarId::invalid(), First);
      return;
    }
    if (!eat(TokenKind::Equals)) {
      error("expected '=', '.', or '::' after '" + First + "'");
      return;
    }

    // `First = ...`
    if (eatWord("new")) {
      auto Type = lookupType(expectIdent("allocated class"));
      if (Type)
        MB.alloc(getVar(MB, First), *Type);
      return;
    }
    if (eat(TokenKind::LParen)) {
      // Cast: First = (T) y
      auto Type = lookupType(expectIdent("cast target class"));
      if (!eat(TokenKind::RParen)) {
        error("expected ')' in cast");
        return;
      }
      VarId From = getVar(MB, expectIdent("cast source variable"));
      if (Type)
        MB.cast(getVar(MB, First), From, *Type);
      return;
    }

    std::string Second = expectIdent("variable, receiver, or class");
    if (at(TokenKind::Hash)) {
      // Static load: First = Class#field.
      auto Field = resolveField(Second);
      if (Field)
        MB.sload(getVar(MB, First), *Field);
      return;
    }
    if (at(TokenKind::Dot) && peek(2).Kind == TokenKind::Hash) {
      // Load: First = Second.C#f
      advance(); // '.'
      std::string ClassName = expectIdent("field class");
      auto Field = resolveField(ClassName);
      if (Field)
        MB.load(getVar(MB, First), getVar(MB, Second), *Field);
      return;
    }
    if (at(TokenKind::Dot) || at(TokenKind::ColonColon)) {
      parseCall(MB, getVar(MB, First), Second);
      return;
    }
    // Move: First = Second
    MB.move(getVar(MB, First), getVar(MB, Second));
  }

  std::vector<Token> Tokens;
  size_t Pos = 0;
  std::vector<std::string> Errors;

  std::vector<ClassDecl> Classes;
  ProgramBuilder Builder;
  std::map<std::string, TypeId> Types;
  std::map<std::pair<uint32_t, std::string>, FieldId> FieldsByName;
  std::map<std::tuple<uint32_t, std::string, uint32_t>, MethodId>
      MethodsByName;
  std::map<std::string, VarId> Vars;
};

} // namespace

ParseResult intro::parseProgram(std::string_view Source) {
  return Parser(Source).run();
}
