//===- frontend/Lexer.h - Tokenizer for the textual IR ----------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the textual IR format (see Parser.h for the grammar).
/// Line comments start with '//'.  Identifiers may contain '$' (used by
/// generated names like `$ret`).
///
//===----------------------------------------------------------------------===//

#ifndef FRONTEND_LEXER_H
#define FRONTEND_LEXER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace intro {

/// Token kinds of the textual IR.
enum class TokenKind : uint8_t {
  Identifier, ///< Names and keywords (keywords resolved by the parser).
  LBrace,     ///< {
  RBrace,     ///< }
  LParen,     ///< (
  RParen,     ///< )
  Equals,     ///< =
  Dot,        ///< .
  Comma,      ///< ,
  Hash,       ///< #   (field qualifier: Class#field)
  ColonColon, ///< ::  (static call: Class::method)
  Arrow,      ///< ->  (formal return)
  EndOfFile,
  Error, ///< Unexpected character.
};

/// One token with its source position.
struct Token {
  TokenKind Kind;
  std::string_view Text; ///< Lexeme (identifiers only).
  uint32_t Line;         ///< 1-based source line.
};

/// Tokenizes \p Source.  The final token is always EndOfFile, even after an
/// Error token — parser loops keyed on EndOfFile must always terminate.
/// Views point into \p Source.
std::vector<Token> tokenize(std::string_view Source);

} // namespace intro

#endif // FRONTEND_LEXER_H
