//===- frontend/Parser.h - Textual IR parser --------------------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parser for the textual IR format, a human-readable rendering of the
/// paper's input language.  Grammar:
///
/// \code
///   program   := classDecl*
///   classDecl := "class" ID ("extends" ID)? ("{" member* "}")?
///   member    := "field" ID
///              | "entry"? "static"? "method" ID "(" params? ")"
///                ("->" ID)? "{" stmt* "}"
///   stmt      := ID "=" "new" ID                    // alloc
///              | ID "=" "(" ID ")" ID               // cast
///              | ID "=" ID "." ID "#" ID            // load   x = y.C#f
///              | ID "." ID "#" ID "=" ID            // store  y.C#f = x
///              | (ID "=")? ID "." ID "(" args? ")"  // virtual call
///              | (ID "=")? ID "::" ID "(" args? ")" // static call C::m(..)
///              | "return" ID                        // move into the return
///              | ID "=" ID                          // move
/// \endcode
///
/// Variables are implicitly declared on first use within a method; `this`
/// denotes the receiver.  Fields are qualified by their declaring class
/// (`Class#field`).  Static call targets are resolved by (class, name,
/// arity) after the whole file is parsed, so forward references work.
///
//===----------------------------------------------------------------------===//

#ifndef FRONTEND_PARSER_H
#define FRONTEND_PARSER_H

#include "ir/Program.h"

#include <string>
#include <string_view>
#include <vector>

namespace intro {

/// Result of parsing: a program plus any diagnostics.  The program is
/// meaningful only when Errors is empty.
struct ParseResult {
  Program Prog;
  std::vector<std::string> Errors;

  bool ok() const { return Errors.empty(); }
};

/// Parses the textual IR in \p Source.  On success, the returned program is
/// finalized (but not validated; run ir/Validator.h if the source is
/// untrusted).
ParseResult parseProgram(std::string_view Source);

} // namespace intro

#endif // FRONTEND_PARSER_H
