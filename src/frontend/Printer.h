//===- frontend/Printer.h - Textual IR printer ------------------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints a Program in the textual IR format accepted by frontend/Parser.h.
/// printProgram . parseProgram is the identity on the format (tested by the
/// frontend round-trip suite).
///
//===----------------------------------------------------------------------===//

#ifndef FRONTEND_PRINTER_H
#define FRONTEND_PRINTER_H

#include <string>

namespace intro {

class Program;

/// Renders \p Prog as parseable textual IR.
std::string printProgram(const Program &Prog);

} // namespace intro

#endif // FRONTEND_PRINTER_H
