//===- frontend/Printer.cpp - Textual IR printer --------------------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Printer.h"

#include "ir/Program.h"

#include <set>
#include <string>

using namespace intro;

namespace {

/// Appends `Class#field`.
void printFieldRef(std::string &Out, const Program &Prog, FieldId Field) {
  Out += Prog.typeName(Prog.field(Field).Owner);
  Out += '#';
  Out += Prog.fieldName(Field);
}

void printCall(std::string &Out, const Program &Prog, SiteId Site) {
  const SiteInfo &Info = Prog.site(Site);
  Out += "    ";
  if (Info.Result.isValid()) {
    Out += Prog.varName(Info.Result);
    Out += " = ";
  }
  if (Info.IsStatic) {
    Out += Prog.typeName(Prog.method(Info.StaticTarget).Owner);
    Out += "::";
    Out += Prog.methodName(Info.StaticTarget);
  } else {
    Out += Prog.varName(Info.Base);
    Out += '.';
    Out += Prog.name(Prog.signature(Info.Sig).Name);
  }
  Out += '(';
  for (size_t Index = 0; Index < Info.Actuals.size(); ++Index) {
    if (Index > 0)
      Out += ", ";
    Out += Prog.varName(Info.Actuals[Index]);
  }
  Out += ')';
  if (Info.CatchVar.isValid()) {
    Out += " catch (";
    Out += Prog.typeName(Info.CatchType);
    Out += ") ";
    Out += Prog.varName(Info.CatchVar);
  }
  Out += '\n';
}

void printMethod(std::string &Out, const Program &Prog, MethodId Method,
                 const std::set<uint32_t> &Entries) {
  const MethodInfo &Info = Prog.method(Method);
  Out += "  ";
  if (Entries.count(Method.index()))
    Out += "entry ";
  if (Info.IsStatic)
    Out += "static ";
  Out += "method ";
  Out += Prog.methodName(Method);
  Out += '(';
  for (size_t Index = 0; Index < Info.Formals.size(); ++Index) {
    if (Index > 0)
      Out += ", ";
    Out += Prog.varName(Info.Formals[Index]);
  }
  Out += ')';
  if (Info.Return.isValid()) {
    Out += " -> ";
    Out += Prog.varName(Info.Return);
  }
  Out += " {\n";

  for (const Instruction &Instr : Info.Body) {
    switch (Instr.Kind) {
    case InstrKind::Alloc:
      Out += "    ";
      Out += Prog.varName(Instr.To);
      Out += " = new ";
      Out += Prog.typeName(Prog.heap(Instr.Heap).Type);
      Out += '\n';
      break;
    case InstrKind::Move:
      Out += "    ";
      Out += Prog.varName(Instr.To);
      Out += " = ";
      Out += Prog.varName(Instr.From);
      Out += '\n';
      break;
    case InstrKind::Cast:
      Out += "    ";
      Out += Prog.varName(Instr.To);
      Out += " = (";
      Out += Prog.typeName(Instr.CastType);
      Out += ") ";
      Out += Prog.varName(Instr.From);
      Out += '\n';
      break;
    case InstrKind::Load:
      Out += "    ";
      Out += Prog.varName(Instr.To);
      Out += " = ";
      Out += Prog.varName(Instr.Base);
      Out += '.';
      printFieldRef(Out, Prog, Instr.Field);
      Out += '\n';
      break;
    case InstrKind::Store:
      Out += "    ";
      Out += Prog.varName(Instr.Base);
      Out += '.';
      printFieldRef(Out, Prog, Instr.Field);
      Out += " = ";
      Out += Prog.varName(Instr.From);
      Out += '\n';
      break;
    case InstrKind::SLoad:
      Out += "    ";
      Out += Prog.varName(Instr.To);
      Out += " = ";
      printFieldRef(Out, Prog, Instr.Field);
      Out += '\n';
      break;
    case InstrKind::SStore:
      Out += "    ";
      printFieldRef(Out, Prog, Instr.Field);
      Out += " = ";
      Out += Prog.varName(Instr.From);
      Out += '\n';
      break;
    case InstrKind::Throw:
      Out += "    throw ";
      Out += Prog.varName(Instr.From);
      Out += '\n';
      break;
    case InstrKind::Call:
      printCall(Out, Prog, Instr.Site);
      break;
    }
  }
  Out += "  }\n";
}

} // namespace

std::string intro::printProgram(const Program &Prog) {
  std::set<uint32_t> Entries;
  for (MethodId Entry : Prog.entries())
    Entries.insert(Entry.index());

  std::string Out;
  for (uint32_t TypeIndex = 0; TypeIndex < Prog.numTypes(); ++TypeIndex) {
    TypeId Type(TypeIndex);
    const TypeInfo &Info = Prog.type(Type);
    Out += "class ";
    Out += Prog.typeName(Type);
    if (Info.Super.isValid()) {
      Out += " extends ";
      Out += Prog.typeName(Info.Super);
    }

    // Methods are stored program-wide; collect this class's.
    std::vector<MethodId> Methods;
    for (uint32_t MethodIndex = 0; MethodIndex < Prog.numMethods();
         ++MethodIndex)
      if (Prog.method(MethodId(MethodIndex)).Owner == Type)
        Methods.push_back(MethodId(MethodIndex));

    if (Info.Fields.empty() && Methods.empty()) {
      Out += '\n';
      continue;
    }
    Out += " {\n";
    for (FieldId Field : Info.Fields) {
      Out += "  field ";
      Out += Prog.fieldName(Field);
      Out += '\n';
    }
    for (MethodId Method : Methods)
      printMethod(Out, Prog, Method, Entries);
    Out += "}\n";
  }
  return Out;
}
