//===- frontend/Lexer.cpp - Tokenizer for the textual IR ------------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include <cctype>

using namespace intro;

namespace {

bool isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_' || C == '$';
}

bool isIdentBody(char C) {
  return isIdentStart(C) || std::isdigit(static_cast<unsigned char>(C));
}

} // namespace

std::vector<Token> intro::tokenize(std::string_view Source) {
  std::vector<Token> Tokens;
  uint32_t Line = 1;
  size_t Pos = 0;

  auto Emit = [&](TokenKind Kind, std::string_view Text = {}) {
    Tokens.push_back(Token{Kind, Text, Line});
  };

  while (Pos < Source.size()) {
    char C = Source[Pos];
    if (C == '\n') {
      ++Line;
      ++Pos;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++Pos;
      continue;
    }
    if (C == '/' && Pos + 1 < Source.size() && Source[Pos + 1] == '/') {
      while (Pos < Source.size() && Source[Pos] != '\n')
        ++Pos;
      continue;
    }
    if (isIdentStart(C)) {
      size_t Start = Pos;
      while (Pos < Source.size() && isIdentBody(Source[Pos]))
        ++Pos;
      Emit(TokenKind::Identifier, Source.substr(Start, Pos - Start));
      continue;
    }
    switch (C) {
    case '{':
      Emit(TokenKind::LBrace);
      ++Pos;
      continue;
    case '}':
      Emit(TokenKind::RBrace);
      ++Pos;
      continue;
    case '(':
      Emit(TokenKind::LParen);
      ++Pos;
      continue;
    case ')':
      Emit(TokenKind::RParen);
      ++Pos;
      continue;
    case ',':
      Emit(TokenKind::Comma);
      ++Pos;
      continue;
    case '.':
      Emit(TokenKind::Dot);
      ++Pos;
      continue;
    case '=':
      Emit(TokenKind::Equals);
      ++Pos;
      continue;
    case '#':
      Emit(TokenKind::Hash);
      ++Pos;
      continue;
    case ':':
      if (Pos + 1 < Source.size() && Source[Pos + 1] == ':') {
        Emit(TokenKind::ColonColon);
        Pos += 2;
        continue;
      }
      Emit(TokenKind::Error, Source.substr(Pos, 1));
      Emit(TokenKind::EndOfFile);
      return Tokens;
    case '-':
      if (Pos + 1 < Source.size() && Source[Pos + 1] == '>') {
        Emit(TokenKind::Arrow);
        Pos += 2;
        continue;
      }
      Emit(TokenKind::Error, Source.substr(Pos, 1));
      Emit(TokenKind::EndOfFile);
      return Tokens;
    default:
      Emit(TokenKind::Error, Source.substr(Pos, 1));
      Emit(TokenKind::EndOfFile);
      return Tokens;
    }
  }
  Emit(TokenKind::EndOfFile);
  return Tokens;
}
