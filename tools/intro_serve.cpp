//===- tools/intro_serve.cpp - Persistent analysis service daemon ---------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Long-running front of the supervision layer: listens on a Unix-domain
/// socket, accepts analysis jobs over the intro-serve-v1 frame protocol
/// (serve/Protocol.h), runs each in its own forked, rlimit-guarded child,
/// and streams the child's transcript back to the submitting client.  See
/// DESIGN.md section 12 and the README walkthrough.
///
///   intro_serve --socket=PATH [options]
///
///   --socket=PATH        Unix-domain socket to listen on (required)
///   --workers=N          concurrent supervised jobs (default 2)
///   --deadline=SECONDS   default per-job wall watchdog (default 60)
///   --max-deadline=SECONDS  clamp on a request's deadline_seconds
///                        (default 600)
///   --max-attempts=N     attempts per job before giving up (default 3)
///   --cpu-limit=SECONDS  per-child RLIMIT_CPU (default 0 = off)
///   --mem-limit=MB       per-child RLIMIT_AS (default 0 = off)
///   --seed=N             retry-jitter seed (default 0x5eed)
///   --cache-dir=DIR      Pass-A cache shared across all served jobs
///   --cache-max-entries=N  cap on cached entries (default 0 = no cap)
///   --no-deep            skip the deep ladder rung
///
/// SIGTERM and SIGINT drain: in-flight jobs finish (children reaped), the
/// socket file is removed, and the process exits 0.  SIGPIPE is ignored
/// (support/Socket.h policy): a client hanging up mid-stream cancels its
/// job, it never kills the server.
///
/// Exit codes (support/ExitCodes.h): 0 clean shutdown; 2 bad usage; 3
/// internal error.
///
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "support/ExitCodes.h"
#include "support/Overflow.h"
#include "support/ParseNum.h"
#include "support/Socket.h"

#include <atomic>
#include <csignal>
#include <exception>
#include <iostream>
#include <limits>
#include <string>

using namespace intro;
using namespace intro::serve;

namespace {

/// Written by the signal handler, polled by the accept loop.  A plain
/// store is the only async-signal-safe thing a handler may do here.
std::atomic<bool> GStop{false};

void onStopSignal(int) { GStop.store(true, std::memory_order_relaxed); }

bool flagValue(const std::string &Arg, const char *Flag, std::string &Value) {
  std::string Prefix = std::string(Flag) + "=";
  if (Arg.compare(0, Prefix.size(), Prefix) != 0)
    return false;
  Value = Arg.substr(Prefix.size());
  return true;
}

int parseCli(int argc, char **argv, ServerOptions &Options) {
  constexpr uint32_t U32Max = std::numeric_limits<uint32_t>::max();
  constexpr uint64_t U64Max = std::numeric_limits<uint64_t>::max();
  std::string Error;
  for (int Index = 1; Index < argc; ++Index) {
    std::string Arg = argv[Index];
    std::string Value;
    if (flagValue(Arg, "--socket", Options.SocketPath) ||
        flagValue(Arg, "--cache-dir", Options.Batch.CacheDir))
      continue;
    if (flagValue(Arg, "--workers", Value)) {
      uint32_t Workers = 0;
      if (!parseU32("--workers", Value, 1, U32Max, Workers, Error))
        break;
      Options.Workers = Workers;
      continue;
    }
    if (flagValue(Arg, "--deadline", Value)) {
      if (!parseF64("--deadline", Value, 0.001, 1e9,
                    Options.Batch.Limits.WallDeadlineSeconds, Error))
        break;
      continue;
    }
    if (flagValue(Arg, "--max-deadline", Value)) {
      if (!parseF64("--max-deadline", Value, 0.001, 1e9,
                    Options.MaxDeadlineSeconds, Error))
        break;
      continue;
    }
    if (flagValue(Arg, "--max-attempts", Value)) {
      if (!parseU32("--max-attempts", Value, 1, U32Max,
                    Options.Batch.Retry.MaxAttempts, Error))
        break;
      continue;
    }
    if (flagValue(Arg, "--cpu-limit", Value)) {
      if (!parseU32("--cpu-limit", Value, 0, U32Max,
                    Options.Batch.Limits.MaxCpuSeconds, Error))
        break;
      continue;
    }
    if (flagValue(Arg, "--mem-limit", Value)) {
      uint64_t MiB = 0;
      if (!parseU64("--mem-limit", Value, 1, U64Max, MiB, Error))
        break;
      Options.Batch.Limits.MaxAddressSpaceBytes =
          saturatingMul(MiB, 1ull << 20);
      continue;
    }
    if (flagValue(Arg, "--seed", Value)) {
      if (!parseU64("--seed", Value, 0, U64Max, Options.Batch.Retry.Seed,
                    Error))
        break;
      continue;
    }
    if (flagValue(Arg, "--cache-max-entries", Value)) {
      if (!parseU64("--cache-max-entries", Value, 0, U64Max,
                    Options.Batch.CacheMaxEntries, Error))
        break;
      continue;
    }
    if (Arg == "--no-deep") {
      Options.Batch.Ladder.AttemptDeep = false;
      continue;
    }
    std::cerr << "error: unknown flag '" << Arg << "'\n";
    return ExitBadInput;
  }
  if (!Error.empty()) {
    std::cerr << "error: " << Error << "\n";
    return ExitBadInput;
  }
  if (Options.SocketPath.empty()) {
    std::cerr << "usage: intro_serve --socket=PATH [options]\n"
                 "       (see the file header or README for options)\n";
    return ExitBadInput;
  }
  return -1;
}

} // namespace

int main(int argc, char **argv) try {
  ignoreSigPipe();

  ServerOptions Options;
  Options.Batch.Limits.WallDeadlineSeconds = 60;
  if (int Code = parseCli(argc, argv, Options); Code >= 0)
    return Code;

  struct sigaction Action = {};
  Action.sa_handler = onStopSignal;
  ::sigaction(SIGTERM, &Action, nullptr);
  ::sigaction(SIGINT, &Action, nullptr);

  Server Daemon(Options);
  std::string Error;
  if (!Daemon.start(Error)) {
    std::cerr << "error: " << Error << "\n";
    return ExitBadInput;
  }
  // CI and scripts wait for this line (flushed) as the readiness signal.
  std::cout << "intro_serve listening on " << Options.SocketPath << std::endl;

  int Code = Daemon.run(GStop);
  std::cout << "intro_serve drained; exiting\n";
  return Code;
} catch (const std::exception &Error) {
  std::cerr << "internal error: " << Error.what() << "\n";
  return ExitInternalError;
} catch (...) {
  std::cerr << "internal error: unknown exception\n";
  return ExitInternalError;
}
