//===- tools/intro_fuzz.cpp - Differential fuzzing driver -----------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line front of the fuzzing subsystem (src/fuzz/): sweeps a seed
/// range, generates one biased random program per seed, differential-tests
/// the solver stack against its references (interpreter, Datalog, and the
/// metamorphic invariants), shrinks any disagreement with the delta
/// debugger, and files quarantine-style repro + triage artifacts.  See
/// DESIGN.md section 13 and the README "Fuzzing the analysis" walkthrough.
///
///   intro_fuzz [options] [<file.ir | file.intro | directory>...]
///
/// With positional inputs the tool replays them through the oracle harness
/// instead of generating programs (corpus smoke / repro re-check mode).
///
///   --seed=N             first seed of the range (default 1)
///   --count=K            seeds to sweep (default 100)
///   --workers=N          concurrent seed tasks (default 1; results are
///                        independent of this knob by construction)
///   --fuzz-budget=SECS   stop launching new seeds after SECS seconds;
///                        in-flight seeds finish (default 0 = no budget)
///   --report=FILE        write the intro-fuzz-report-v1 JSON here
///   --repro-dir=DIR      write <name>.ir + .triage.json + .reason.txt per
///                        failing seed (default: no artifacts)
///   --no-reduce          file repros unreduced (faster triage-only runs)
///   --reduce-max-checks=N  reducer predicate budget per finding (600)
///   --oracles=SPEC       default | all | comma list of oracle names
///                        (validity, round-trip, soundness,
///                        reference-equivalence, introspective-subset,
///                        cache-parity, portfolio-parity, served-parity)
///   --thorough           add the expensive flavors: call-site/type
///                        sensitivity, checked casts, introspective-split
///                        Datalog equivalence
///   --mutate=N           byte-level frontend mutants per seed (default 0)
///   --plant-bug=NAME     corrupt the solver-under-test on purpose (none,
///                        drop-max-heap, drop-max-call-target,
///                        forget-throws) — harness self-test mode
///   --max-tuples=N       per-run tuple cap; over-budget runs are skipped,
///                        not failed (default 2000000)
///   --cache-dir=DIR      scratch for the cache-parity oracle (default: a
///                        fresh temp dir, removed on exit)
///   --scratch-dir=DIR    scratch for the served-parity oracle's socket
///                        (default: a fresh temp dir, removed on exit)
///   --emit=DIR           corpus builder: write each generated program to
///                        DIR/fuzz-<bias>-<seed>.ir and run no oracles
///
/// Exit codes (support/ExitCodes.h): 0 no findings; 1 at least one oracle
/// finding; 2 bad usage or unreadable inputs; 3 internal error.
///
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "frontend/Printer.h"
#include "fuzz/Campaign.h"

#include "support/ExitCodes.h"
#include "support/ParseNum.h"
#include "support/Socket.h"
#include "support/TableWriter.h"

#include <unistd.h>

#include <algorithm>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

using namespace intro;
using namespace intro::fuzz;
namespace fs = std::filesystem;

namespace {

struct CliOptions {
  std::vector<std::string> Inputs;
  std::string ReportPath;
  std::string EmitDir;
  CampaignOptions Campaign;
  bool CacheDirGiven = false;
  bool ScratchDirGiven = false;
};

bool flagValue(const std::string &Arg, const char *Flag, std::string &Value) {
  std::string Prefix = std::string(Flag) + "=";
  if (Arg.compare(0, Prefix.size(), Prefix) != 0)
    return false;
  Value = Arg.substr(Prefix.size());
  return true;
}

/// Parses `--oracles=` payloads: the two presets or a comma list of kebab
/// names.
bool parseOracles(const std::string &Spec, OracleSet &Out,
                  std::string &Error) {
  if (Spec == "default") {
    Out = OracleSet::defaults();
    return true;
  }
  if (Spec == "all") {
    Out = OracleSet::all();
    return true;
  }
  OracleSet Set;
  size_t Begin = 0;
  while (Begin <= Spec.size()) {
    size_t End = Spec.find(',', Begin);
    if (End == std::string::npos)
      End = Spec.size();
    std::string Name = Spec.substr(Begin, End - Begin);
    OracleKind Kind;
    if (!oracleKindFromName(Name, Kind)) {
      Error = "unknown oracle '" + Name + "' in --oracles";
      return false;
    }
    Set.enable(Kind);
    Begin = End + 1;
  }
  Out = Set;
  return true;
}

/// Parses the command line.  \returns an exit code to bail with, or -1 to
/// continue.
int parseCli(int argc, char **argv, CliOptions &Cli) {
  constexpr uint32_t U32Max = std::numeric_limits<uint32_t>::max();
  constexpr uint64_t U64Max = std::numeric_limits<uint64_t>::max();
  std::string Error;
  for (int Index = 1; Index < argc; ++Index) {
    std::string Arg = argv[Index];
    std::string Value;
    if (flagValue(Arg, "--report", Cli.ReportPath) ||
        flagValue(Arg, "--repro-dir", Cli.Campaign.ReproDir) ||
        flagValue(Arg, "--emit", Cli.EmitDir))
      continue;
    if (flagValue(Arg, "--cache-dir", Cli.Campaign.Oracles.CacheDir)) {
      Cli.CacheDirGiven = true;
      continue;
    }
    if (flagValue(Arg, "--scratch-dir", Cli.Campaign.Oracles.ScratchDir)) {
      Cli.ScratchDirGiven = true;
      continue;
    }
    if (flagValue(Arg, "--seed", Value)) {
      if (!parseU64("--seed", Value, 0, U64Max, Cli.Campaign.Seed, Error))
        break;
      continue;
    }
    if (flagValue(Arg, "--count", Value)) {
      if (!parseU64("--count", Value, 1, 100'000'000, Cli.Campaign.Count,
                    Error))
        break;
      continue;
    }
    if (flagValue(Arg, "--workers", Value)) {
      uint32_t Workers = 0;
      if (!parseU32("--workers", Value, 1, 256, Workers, Error))
        break;
      Cli.Campaign.Workers = Workers;
      continue;
    }
    if (flagValue(Arg, "--fuzz-budget", Value)) {
      if (!parseF64("--fuzz-budget", Value, 0.0, 1e9,
                    Cli.Campaign.BudgetSeconds, Error))
        break;
      continue;
    }
    if (flagValue(Arg, "--reduce-max-checks", Value)) {
      if (!parseU32("--reduce-max-checks", Value, 1, U32Max,
                    Cli.Campaign.ReduceMaxChecks, Error))
        break;
      continue;
    }
    if (flagValue(Arg, "--mutate", Value)) {
      if (!parseU32("--mutate", Value, 0, U32Max,
                    Cli.Campaign.MutationsPerSeed, Error))
        break;
      continue;
    }
    if (flagValue(Arg, "--max-tuples", Value)) {
      if (!parseU64("--max-tuples", Value, 1, U64Max,
                    Cli.Campaign.Oracles.MaxTuples, Error))
        break;
      continue;
    }
    if (flagValue(Arg, "--oracles", Value)) {
      if (!parseOracles(Value, Cli.Campaign.Oracles.Oracles, Error))
        break;
      continue;
    }
    if (flagValue(Arg, "--plant-bug", Value)) {
      if (!plantedBugFromName(Value, Cli.Campaign.Oracles.Bug)) {
        Error = "unknown --plant-bug '" + Value + "'";
        break;
      }
      continue;
    }
    if (Arg == "--no-reduce") {
      Cli.Campaign.Reduce = false;
      continue;
    }
    if (Arg == "--thorough") {
      Cli.Campaign.Oracles.Thorough = true;
      continue;
    }
    if (Arg.size() >= 2 && Arg[0] == '-' && Arg[1] == '-') {
      std::cerr << "error: unknown flag '" << Arg << "'\n";
      return ExitBadInput;
    }
    Cli.Inputs.push_back(Arg);
  }
  if (!Error.empty()) {
    std::cerr << "error: " << Error << "\n";
    return ExitBadInput;
  }
  return -1;
}

/// Owns the default scratch directory for the cache/served parity oracles:
/// created lazily under the system temp dir, removed on destruction.  A
/// user-supplied --cache-dir / --scratch-dir is left alone.
struct ScratchGuard {
  fs::path Dir;

  ~ScratchGuard() {
    if (Dir.empty())
      return;
    std::error_code Ignored;
    fs::remove_all(Dir, Ignored);
  }

  bool materialize(std::string &Error) {
    if (!Dir.empty())
      return true;
    std::error_code Ec;
    fs::path Base = fs::temp_directory_path(Ec);
    if (Ec) {
      Error = "cannot resolve temp directory: " + Ec.message();
      return false;
    }
    Dir = Base / ("intro-fuzz-" + std::to_string(::getpid()));
    fs::create_directories(Dir, Ec);
    if (Ec) {
      Error = "cannot create scratch dir: " + Dir.string();
      return false;
    }
    return true;
  }
};

/// Corpus builder: writes one canonical program per seed and runs nothing
/// else.  Names carry the bias so the corpus visibly covers every knob.
int runEmitMode(const CliOptions &Cli) {
  std::error_code Ec;
  fs::create_directories(Cli.EmitDir, Ec);
  if (Ec) {
    std::cerr << "error: cannot create --emit dir: " << Cli.EmitDir << "\n";
    return ExitBadInput;
  }
  for (uint64_t Index = 0; Index < Cli.Campaign.Count; ++Index) {
    uint64_t Seed = Cli.Campaign.Seed + Index;
    FuzzBias Bias = biasForSeed(Seed);
    Program Prog = generateFuzzProgram(Seed, Bias, Cli.Campaign.Program);
    fs::path File = fs::path(Cli.EmitDir) /
                    ("fuzz-" + std::string(fuzzBiasName(Bias)) + "-" +
                     std::to_string(Seed) + ".ir");
    std::ofstream Out(File, std::ios::binary);
    Out << printProgram(Prog);
    if (!Out) {
      std::cerr << "error: cannot write: " << File.string() << "\n";
      return ExitInternalError;
    }
    std::cout << File.string() << "\n";
  }
  return ExitSuccess;
}

/// Expands positional inputs into (name, path) pairs, name-sorted like
/// intro_batch so replay order is enumeration-independent.
int collectReplayFiles(const CliOptions &Cli, std::vector<fs::path> &Files) {
  for (const std::string &Input : Cli.Inputs) {
    std::error_code Ec;
    if (fs::is_directory(Input, Ec)) {
      for (const fs::directory_entry &Entry :
           fs::directory_iterator(Input, Ec)) {
        fs::path Ext = Entry.path().extension();
        if (Ext == ".ir" || Ext == ".intro")
          Files.push_back(Entry.path());
      }
      if (Ec) {
        std::cerr << "error: cannot read directory: " << Input << "\n";
        return ExitBadInput;
      }
    } else if (fs::is_regular_file(Input, Ec)) {
      Files.push_back(Input);
    } else {
      std::cerr << "error: no such file or directory: " << Input << "\n";
      return ExitBadInput;
    }
  }
  std::sort(Files.begin(), Files.end());
  if (Files.empty()) {
    std::cerr << "error: no .ir/.intro files found\n";
    return ExitBadInput;
  }
  return -1;
}

/// Replay mode: every input runs through the same oracles + reducer a
/// generated seed would.  A file that does not parse is bad input, not a
/// finding — repro files are trusted to be valid programs.
int runReplayMode(const CliOptions &Cli, CampaignOutcome &Outcome) {
  std::vector<fs::path> Files;
  if (int Code = collectReplayFiles(Cli, Files); Code >= 0)
    return Code;
  Outcome.SeedsPlanned = Files.size();
  for (const fs::path &File : Files) {
    std::ifstream In(File, std::ios::binary);
    if (!In) {
      std::cerr << "error: cannot read: " << File.string() << "\n";
      return ExitBadInput;
    }
    std::ostringstream Text;
    Text << In.rdbuf();
    ParseResult Parsed = parseProgram(Text.str());
    if (!Parsed.ok()) {
      std::cerr << "error: " << File.string()
                << " does not parse: " << Parsed.Errors.front() << "\n";
      return ExitBadInput;
    }
    SeedReport Report =
        replayProgram(Parsed.Prog, File.stem().string(), Cli.Campaign);
    Outcome.TotalFindings += Report.Findings.size();
    Outcome.ChecksRun += Report.ChecksRun;
    Outcome.ChecksSkipped += Report.ChecksSkipped;
    Outcome.Seeds.push_back(std::move(Report));
    ++Outcome.SeedsStarted;
  }
  return -1;
}

void printSummary(const CliOptions &Cli, const CampaignOutcome &Outcome,
                  const std::vector<std::string> &Labels) {
  if (Outcome.TotalFindings > 0) {
    TableWriter Table({"seed", "bias", "oracle", "policy", "statements"});
    for (size_t Index = 0; Index < Outcome.Seeds.size(); ++Index) {
      const SeedReport &Seed = Outcome.Seeds[Index];
      for (const Finding &F : Seed.Findings)
        Table.addRow({Labels[Index], fuzzBiasName(Seed.Bias),
                      oracleKindName(F.Oracle), F.Policy,
                      Seed.Reduced ? TableWriter::num(Seed.Reduction.Statements)
                                   : std::string("-")});
    }
    Table.print(std::cout);
  }
  std::cout << "fuzz: " << Outcome.SeedsStarted << "/" << Outcome.SeedsPlanned
            << " seeds, " << Outcome.TotalFindings << " findings, "
            << Outcome.ChecksRun << " checks (" << Outcome.ChecksSkipped
            << " skipped), " << Outcome.MutantsChecked << " mutants";
  if (Outcome.BudgetExhausted)
    std::cout << ", budget exhausted";
  std::cout << "\n";
  if (!Cli.Campaign.ReproDir.empty() && Outcome.TotalFindings > 0)
    std::cout << "repros filed under: " << Cli.Campaign.ReproDir << "\n";
}

} // namespace

int main(int argc, char **argv) try {
  // `intro_fuzz ... | head` must not die of SIGPIPE mid-campaign
  // (support/Socket.h policy).
  ignoreSigPipe();

  CliOptions Cli;
  if (int Code = parseCli(argc, argv, Cli); Code >= 0)
    return Code;

  if (!Cli.EmitDir.empty())
    return runEmitMode(Cli);

  // The parity oracles need disk scratch; default to a self-cleaning temp
  // dir so `intro_fuzz` runs the full default oracle set out of the box.
  ScratchGuard Scratch;
  std::string Error;
  if (!Cli.CacheDirGiven &&
      Cli.Campaign.Oracles.Oracles.has(OracleKind::CacheWarmColdParity)) {
    if (!Scratch.materialize(Error)) {
      std::cerr << "error: " << Error << "\n";
      return ExitInternalError;
    }
    Cli.Campaign.Oracles.CacheDir = (Scratch.Dir / "cache").string();
  }
  if (!Cli.ScratchDirGiven &&
      Cli.Campaign.Oracles.Oracles.has(OracleKind::ServedLocalParity)) {
    if (!Scratch.materialize(Error)) {
      std::cerr << "error: " << Error << "\n";
      return ExitInternalError;
    }
    Cli.Campaign.Oracles.ScratchDir = (Scratch.Dir / "serve").string();
    std::error_code Ec;
    fs::create_directories(Cli.Campaign.Oracles.ScratchDir, Ec);
  }

  CampaignOutcome Outcome;
  std::vector<std::string> Labels;
  if (!Cli.Inputs.empty()) {
    std::vector<fs::path> Files;
    if (int Code = runReplayMode(Cli, Outcome); Code >= 0)
      return Code;
    for (size_t Index = 0; Index < Outcome.Seeds.size(); ++Index)
      Labels.push_back(Outcome.Seeds[Index].ReproName.empty()
                           ? "replay#" + std::to_string(Index)
                           : Outcome.Seeds[Index].ReproName);
  } else {
    Outcome = runCampaign(Cli.Campaign);
    for (const SeedReport &Seed : Outcome.Seeds)
      Labels.push_back(std::to_string(Seed.Seed));
  }

  printSummary(Cli, Outcome, Labels);

  if (!Cli.ReportPath.empty()) {
    std::ofstream Out(Cli.ReportPath, std::ios::binary);
    if (!Out) {
      std::cerr << "error: cannot write report: " << Cli.ReportPath << "\n";
      return ExitInternalError;
    }
    writeCampaignReportJson(Out, Cli.Campaign, Outcome);
    std::cout << "fuzz report: " << Cli.ReportPath << "\n";
  }

  return Outcome.clean() ? ExitSuccess : ExitAnalysisFailure;
} catch (const std::exception &Error) {
  std::cerr << "internal error: " << Error.what() << "\n";
  return ExitInternalError;
} catch (...) {
  std::cerr << "internal error: unknown exception\n";
  return ExitInternalError;
}
