//===- tools/intro_batch.cpp - Supervised batch analysis runner -----------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line front of the supervision layer: analyzes a corpus of
/// textual-IR programs (.intro files), each in its own forked,
/// rlimit-guarded child, and reports every job as a classified event —
/// clean, retried, or quarantined.  See DESIGN.md section 9 and the README
/// walkthrough.
///
///   intro_batch [options] <file.intro | directory>...
///
///   --report=FILE        write the intro-batch-report-v1 JSON here
///   --quarantine=DIR     copy inputs of quarantined jobs here (plus a
///                        .reason.txt per input explaining the verdict)
///   --max-attempts=N     attempts per job before quarantine (default 3)
///   --deadline=SECONDS   per-child wall watchdog (default 60)
///   --cpu-limit=SECONDS  per-child RLIMIT_CPU (default 0 = off)
///   --mem-limit=MB       per-child RLIMIT_AS (default 0 = off; huge
///                        values saturate instead of wrapping)
///   --seed=N             retry-jitter seed (default 0x5eed)
///   --workers=N          supervisor threads (default 1)
///   --cache-dir=DIR      content-addressed Pass-A cache shared across
///                        jobs, retries, and repeated runs
///   --cache-max-entries=N  cap on cached entries (default 0 = no cap)
///   --no-deep            skip the deep ladder rung (start at the
///                        introspective rungs, which use the cache)
///   --chaos=SPEC@NAME    inject a process-level fault into job NAME;
///                        SPEC = crash|oom|spin|exit|garbage|truncate
///                        [:LEVEL][:UNTIL] (smoke tests; see ChaosPlan)
///   --server=SOCK        client mode: submit the jobs to the intro_serve
///                        daemon at Unix socket SOCK instead of forking
///                        locally; --report then writes an
///                        intro-serve-client-report-v1 document
///   --job-reports=DIR    write each job's final intro-run-report-v1 line
///                        to DIR/<name>.report.json (works in both local
///                        and server mode; the deterministic sections are
///                        byte-identical between the two)
///
/// Exit codes (support/ExitCodes.h): 0 all jobs clean; 1 at least one job
/// failed or was quarantined; 2 bad usage or unreadable inputs; 3 internal
/// error.
///
//===----------------------------------------------------------------------===//

#include "serve/Client.h"
#include "supervise/Supervise.h"

#include "support/ExitCodes.h"
#include "support/Json.h"
#include "support/Overflow.h"
#include "support/ParseNum.h"
#include "support/Socket.h"
#include "support/TableWriter.h"

#include <memory>

#include <algorithm>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace intro;
using namespace intro::supervise;
namespace fs = std::filesystem;

namespace {

/// One parsed --chaos flag.  SpecBody keeps the raw KIND[:LEVEL][:UNTIL]
/// text because server mode forwards it verbatim for the daemon to parse.
struct ChaosFlag {
  std::string Name;
  ChaosPlan Plan;
  std::string SpecBody;
};

struct CliOptions {
  std::vector<std::string> Inputs;
  std::string ReportPath;
  std::string QuarantineDir;
  std::string ServerSocket; ///< Nonempty: client mode against intro_serve.
  std::string JobReportsDir;
  BatchOptions Batch;
  /// Chaos specs keyed by job name, applied after corpus discovery.
  std::vector<ChaosFlag> Chaos;
};

/// Parses `--flag=value`; \returns true and fills \p Value on a match.
bool flagValue(const std::string &Arg, const char *Flag, std::string &Value) {
  std::string Prefix = std::string(Flag) + "=";
  if (Arg.compare(0, Prefix.size(), Prefix) != 0)
    return false;
  Value = Arg.substr(Prefix.size());
  return true;
}

/// Parses a `--chaos=` SPEC@NAME payload; the SPEC body grammar lives in
/// supervise::parseChaosPlan (shared with the serve protocol).
bool parseChaosSpec(const std::string &Spec, ChaosFlag &Out) {
  size_t At = Spec.rfind('@');
  if (At == std::string::npos || At + 1 >= Spec.size())
    return false;
  Out.Name = Spec.substr(At + 1);
  Out.SpecBody = Spec.substr(0, At);
  std::string Error;
  return parseChaosPlan(Out.SpecBody, Out.Plan, Error);
}

/// Parses the command line.  \returns an exit code to bail with, or -1 to
/// continue.
int parseCli(int argc, char **argv, CliOptions &Cli) {
  constexpr uint32_t U32Max = std::numeric_limits<uint32_t>::max();
  constexpr uint64_t U64Max = std::numeric_limits<uint64_t>::max();
  std::string Error;
  for (int Index = 1; Index < argc; ++Index) {
    std::string Arg = argv[Index];
    std::string Value;
    if (flagValue(Arg, "--report", Cli.ReportPath) ||
        flagValue(Arg, "--quarantine", Cli.QuarantineDir) ||
        flagValue(Arg, "--cache-dir", Cli.Batch.CacheDir) ||
        flagValue(Arg, "--server", Cli.ServerSocket) ||
        flagValue(Arg, "--job-reports", Cli.JobReportsDir))
      continue;
    if (flagValue(Arg, "--max-attempts", Value)) {
      if (!parseU32("--max-attempts", Value, 1, U32Max,
                    Cli.Batch.Retry.MaxAttempts, Error))
        break;
      continue;
    }
    if (flagValue(Arg, "--deadline", Value)) {
      if (!parseF64("--deadline", Value, 0.0, 1e9,
                    Cli.Batch.Limits.WallDeadlineSeconds, Error))
        break;
      continue;
    }
    if (flagValue(Arg, "--cpu-limit", Value)) {
      if (!parseU32("--cpu-limit", Value, 0, U32Max,
                    Cli.Batch.Limits.MaxCpuSeconds, Error))
        break;
      continue;
    }
    if (flagValue(Arg, "--mem-limit", Value)) {
      // MiB from the user, bytes to RLIMIT_AS.  A huge value must saturate
      // rather than shift-wrap into a tiny (or zero) limit that would
      // starve every child; 0 is rejected because RLIMIT_AS of 0 means "no
      // address space at all", not "no limit" — unlimited is the default,
      // spelled by omitting the flag.
      uint64_t MiB = 0;
      if (!parseU64("--mem-limit", Value, 1, U64Max, MiB, Error))
        break;
      Cli.Batch.Limits.MaxAddressSpaceBytes = saturatingMul(MiB, 1ull << 20);
      continue;
    }
    if (flagValue(Arg, "--seed", Value)) {
      if (!parseU64("--seed", Value, 0, U64Max, Cli.Batch.Retry.Seed, Error))
        break;
      continue;
    }
    if (flagValue(Arg, "--workers", Value)) {
      uint32_t Workers = 0;
      if (!parseU32("--workers", Value, 1, U32Max, Workers, Error))
        break;
      Cli.Batch.Workers = Workers;
      continue;
    }
    if (flagValue(Arg, "--cache-max-entries", Value)) {
      if (!parseU64("--cache-max-entries", Value, 0, U64Max,
                    Cli.Batch.CacheMaxEntries, Error))
        break;
      continue;
    }
    if (Arg == "--no-deep") {
      Cli.Batch.Ladder.AttemptDeep = false;
      continue;
    }
    if (flagValue(Arg, "--chaos", Value)) {
      ChaosFlag Spec;
      if (!parseChaosSpec(Value, Spec)) {
        std::cerr << "error: bad --chaos spec '" << Value
                  << "' (expected KIND[:LEVEL][:UNTIL]@NAME)\n";
        return ExitBadInput;
      }
      Cli.Chaos.push_back(std::move(Spec));
      continue;
    }
    if (Arg.size() >= 2 && Arg[0] == '-' && Arg[1] == '-') {
      std::cerr << "error: unknown flag '" << Arg << "'\n";
      return ExitBadInput;
    }
    Cli.Inputs.push_back(Arg);
  }
  if (!Error.empty()) {
    std::cerr << "error: " << Error << "\n";
    return ExitBadInput;
  }
  if (Cli.Inputs.empty()) {
    std::cerr << "usage: intro_batch [options] <file.intro | directory>...\n"
                 "       (see the file header or README for options)\n";
    return ExitBadInput;
  }
  return -1;
}

/// Expands files and directories into a name-sorted job list.  Jobs are
/// named by file stem; the sort keeps the batch order (and therefore the
/// deterministic report) independent of directory enumeration order.
int collectJobs(const CliOptions &Cli, std::vector<JobSpec> &Jobs) {
  std::vector<fs::path> Files;
  for (const std::string &Input : Cli.Inputs) {
    std::error_code Ec;
    if (fs::is_directory(Input, Ec)) {
      for (const fs::directory_entry &Entry :
           fs::directory_iterator(Input, Ec))
        if (Entry.path().extension() == ".intro")
          Files.push_back(Entry.path());
      if (Ec) {
        std::cerr << "error: cannot read directory: " << Input << "\n";
        return ExitBadInput;
      }
    } else if (fs::is_regular_file(Input, Ec)) {
      Files.push_back(Input);
    } else {
      std::cerr << "error: no such file or directory: " << Input << "\n";
      return ExitBadInput;
    }
  }
  std::sort(Files.begin(), Files.end());
  for (const fs::path &File : Files) {
    std::ifstream In(File);
    if (!In) {
      std::cerr << "error: cannot read: " << File.string() << "\n";
      return ExitBadInput;
    }
    std::ostringstream Text;
    Text << In.rdbuf();
    JobSpec Job;
    Job.Name = File.stem().string();
    Job.Source = Text.str();
    Jobs.push_back(std::move(Job));
  }
  if (Jobs.empty()) {
    std::cerr << "error: no .intro files found\n";
    return ExitBadInput;
  }
  // Two inputs from different directories may share a basename; suffix the
  // later ones (".2", ".3", ...) so report keys and quarantine file stems
  // never collide.  Runs after the sort, so the suffix assignment — and
  // with it the deterministic report and the quarantine listing — is
  // independent of directory enumeration order.
  disambiguateJobNames(Jobs);
  return -1;
}

/// Copies the quarantined inputs (and a reason file each) into the
/// quarantine directory.  \returns false on I/O failure.
bool quarantineInputs(const std::string &Dir, const std::vector<JobSpec> &Jobs,
                      const BatchResult &Batch) {
  std::error_code Ec;
  fs::create_directories(Dir, Ec);
  if (Ec) {
    std::cerr << "error: cannot create quarantine dir: " << Dir << "\n";
    return false;
  }
  for (size_t Index = 0; Index < Batch.Jobs.size(); ++Index) {
    const JobResult &Job = Batch.Jobs[Index];
    if (!Job.Quarantined)
      continue;
    fs::path Input = fs::path(Dir) / (Job.Name + ".intro");
    std::ofstream Copy(Input);
    Copy << Jobs[Index].Source;
    std::ofstream Reason(fs::path(Dir) / (Job.Name + ".reason.txt"));
    Reason << "job: " << Job.Name << "\n"
           << "final class: " << jobOutcomeClassName(Job.FinalClass) << "\n"
           << "attempts: " << Job.Attempts.size() << "\n";
    for (const std::string &Error : Job.InputErrors)
      Reason << "input error: " << Error << "\n";
    if (!Copy || !Reason) {
      std::cerr << "error: cannot write quarantine files for " << Job.Name
                << "\n";
      return false;
    }
  }
  return true;
}

/// Writes one job's final report line (captured from the child transcript)
/// to DIR/<name>.report.json.  \returns false on I/O failure.
bool writeJobReports(const std::string &Dir,
                     const std::vector<std::string> &Names,
                     const std::vector<std::string> &Lines) {
  std::error_code Ec;
  fs::create_directories(Dir, Ec);
  if (Ec) {
    std::cerr << "error: cannot create job-reports dir: " << Dir << "\n";
    return false;
  }
  for (size_t Index = 0; Index < Names.size(); ++Index) {
    if (Lines[Index].empty())
      continue; // Hard death with no report line: nothing to write.
    std::ofstream Out(fs::path(Dir) / (Names[Index] + ".report.json"));
    Out << Lines[Index] << '\n';
    if (!Out) {
      std::cerr << "error: cannot write job report for " << Names[Index]
                << "\n";
      return false;
    }
  }
  return true;
}

/// Client mode: submits every job to the intro_serve daemon at
/// Cli.ServerSocket over one connection, sequentially, and renders the
/// same summary table local mode prints.  The daemon's shared Pass-A cache
/// makes resubmissions warm regardless of which client ran first.
int runServerMode(const CliOptions &Cli, const std::vector<JobSpec> &Jobs) {
  serve::Client Remote;
  std::string Error;
  if (!Remote.connect(Cli.ServerSocket, Error)) {
    std::cerr << "error: " << Error << "\n";
    return ExitBadInput;
  }

  std::vector<serve::SubmitOutcome> Outcomes;
  Outcomes.reserve(Jobs.size());
  for (const JobSpec &Job : Jobs) {
    // The parsed plan cannot cross the wire; resolve the raw spec body
    // recorded at flag-parse time.
    std::string ChaosBody;
    for (const ChaosFlag &Flag : Cli.Chaos)
      if (Flag.Name == Job.Name)
        ChaosBody = Flag.SpecBody;
    serve::SubmitOutcome Outcome;
    if (!Remote.submit(Job.Name, Job.Source,
                       Cli.Batch.Limits.WallDeadlineSeconds, ChaosBody,
                       nullptr, Outcome, Error)) {
      std::cerr << "error: submit of '" << Job.Name << "' failed: " << Error
                << "\n";
      return ExitInternalError;
    }
    Outcomes.push_back(std::move(Outcome));
  }

  TableWriter Table({"job", "class", "attempts", "result", "state"});
  bool AnyFailed = false;
  for (size_t Index = 0; Index < Jobs.size(); ++Index) {
    const serve::SubmitOutcome &O = Outcomes[Index];
    bool Clean = O.State == "done" && O.FinalClass == "clean";
    AnyFailed |= !Clean;
    Table.addRow({Jobs[Index].Name,
                  O.FinalClass.empty() ? "-" : O.FinalClass,
                  TableWriter::num(O.Attempts),
                  Clean ? O.ResultLevel + "/" + O.ResultStatus
                        : std::string("-"),
                  O.State});
  }
  Table.print(std::cout);

  if (!Cli.ReportPath.empty()) {
    std::ofstream Out(Cli.ReportPath);
    if (!Out) {
      std::cerr << "error: cannot write report: " << Cli.ReportPath << "\n";
      return ExitInternalError;
    }
    JsonWriter J(Out);
    J.beginObject();
    J.key("schema");
    J.value("intro-serve-client-report-v1");
    J.key("server");
    J.value(Cli.ServerSocket);
    cache::CacheStats Totals;
    J.key("jobs");
    J.beginArray();
    for (size_t Index = 0; Index < Jobs.size(); ++Index) {
      const serve::SubmitOutcome &O = Outcomes[Index];
      J.beginObject();
      J.key("name");
      J.value(Jobs[Index].Name);
      J.key("job");
      J.value(O.JobId);
      J.key("state");
      J.value(O.State);
      J.key("final_class");
      J.value(O.FinalClass);
      J.key("attempts");
      J.value(O.Attempts);
      J.key("quarantined");
      J.value(O.Quarantined);
      J.key("cache");
      if (O.CacheEnabled) {
        Totals.Probes += O.Cache.Probes;
        Totals.Hits += O.Cache.Hits;
        Totals.Misses += O.Cache.Misses;
        Totals.Stores += O.Cache.Stores;
        Totals.StoreFailures += O.Cache.StoreFailures;
        Totals.Evictions += O.Cache.Evictions;
        J.beginObject();
        J.key("probes");
        J.value(O.Cache.Probes);
        J.key("hits");
        J.value(O.Cache.Hits);
        J.key("misses");
        J.value(O.Cache.Misses);
        J.key("stores");
        J.value(O.Cache.Stores);
        J.endObject();
      } else {
        J.null();
      }
      J.endObject();
    }
    J.endArray();
    J.key("cache_totals");
    J.beginObject();
    J.key("probes");
    J.value(Totals.Probes);
    J.key("hits");
    J.value(Totals.Hits);
    J.key("misses");
    J.value(Totals.Misses);
    J.key("stores");
    J.value(Totals.Stores);
    J.endObject();
    J.endObject();
    Out << '\n';
    std::cout << "\nclient report: " << Cli.ReportPath << "\n";
  }

  if (!Cli.JobReportsDir.empty()) {
    std::vector<std::string> Names;
    std::vector<std::string> Lines;
    for (size_t Index = 0; Index < Jobs.size(); ++Index) {
      Names.push_back(Jobs[Index].Name);
      Lines.push_back(Outcomes[Index].FinalReportLine);
    }
    if (!writeJobReports(Cli.JobReportsDir, Names, Lines))
      return ExitInternalError;
  }

  return AnyFailed ? ExitAnalysisFailure : ExitSuccess;
}

} // namespace

int main(int argc, char **argv) try {
  // `intro_batch ... | head` must end with EPIPE-aware writes, not a
  // silent SIGPIPE death mid-batch (support/Socket.h policy).
  ignoreSigPipe();

  CliOptions Cli;
  Cli.Batch.Limits.WallDeadlineSeconds = 60;
  if (int Code = parseCli(argc, argv, Cli); Code >= 0)
    return Code;

  std::vector<JobSpec> Jobs;
  if (int Code = collectJobs(Cli, Jobs); Code >= 0)
    return Code;

  for (const ChaosFlag &Flag : Cli.Chaos) {
    bool Found = false;
    for (JobSpec &Job : Jobs)
      if (Job.Name == Flag.Name) {
        Job.Chaos = Flag.Plan;
        Found = true;
      }
    if (!Found) {
      std::cerr << "error: --chaos target '" << Flag.Name
                << "' is not a job\n";
      return ExitBadInput;
    }
  }

  if (!Cli.ServerSocket.empty())
    return runServerMode(Cli, Jobs);

  // Per-job capture of the final report line for --job-reports.  Each job
  // index owns its own slots, so pool threads never contend.
  std::vector<std::string> FinalLines(Jobs.size());
  std::function<JobHooks(size_t)> HookFactory;
  if (!Cli.JobReportsDir.empty()) {
    auto Buffers = std::make_shared<std::vector<std::string>>(Jobs.size());
    HookFactory = [&FinalLines, Buffers](size_t Index) {
      JobHooks Hooks;
      Hooks.OnChildOutput = [&FinalLines, Buffers,
                             Index](uint32_t, std::string_view Chunk) {
        std::string &Buffer = (*Buffers)[Index];
        Buffer.append(Chunk);
        size_t Newline;
        while ((Newline = Buffer.find('\n')) != std::string::npos) {
          std::string Line = Buffer.substr(0, Newline);
          Buffer.erase(0, Newline + 1);
          if (Line.find("\"schema\"") != std::string::npos)
            FinalLines[Index] = std::move(Line);
        }
      };
      return Hooks;
    };
  }

  BatchResult Batch = runSupervisedBatch(Jobs, Cli.Batch, HookFactory);

  if (!Cli.JobReportsDir.empty()) {
    std::vector<std::string> Names;
    for (const JobSpec &Job : Jobs)
      Names.push_back(Job.Name);
    if (!writeJobReports(Cli.JobReportsDir, Names, FinalLines))
      return ExitInternalError;
  }

  TableWriter Table({"job", "class", "attempts", "result", "quarantined"});
  for (const JobResult &Job : Batch.Jobs) {
    std::string Result = Job.FinalClass == JobOutcomeClass::Clean
                             ? Job.ResultLevel + "/" + Job.ResultStatus
                             : std::string("-");
    Table.addRow({Job.Name, jobOutcomeClassName(Job.FinalClass),
                  TableWriter::num(static_cast<uint64_t>(Job.Attempts.size())),
                  Result, Job.Quarantined ? "yes" : "no"});
  }
  Table.print(std::cout);

  if (!Cli.ReportPath.empty()) {
    std::ofstream Out(Cli.ReportPath);
    if (!Out) {
      std::cerr << "error: cannot write report: " << Cli.ReportPath << "\n";
      return ExitInternalError;
    }
    JsonWriter J(Out);
    writeBatchReportJson(J, Batch, Cli.Batch);
    Out << '\n';
    std::cout << "\nbatch report: " << Cli.ReportPath << "\n";
  }

  bool AnyQuarantined = false;
  for (const JobResult &Job : Batch.Jobs)
    AnyQuarantined |= Job.Quarantined;
  if (AnyQuarantined && !Cli.QuarantineDir.empty()) {
    if (!quarantineInputs(Cli.QuarantineDir, Jobs, Batch))
      return ExitInternalError;
    std::cout << "quarantined inputs copied to: " << Cli.QuarantineDir << "\n";
  }

  return AnyQuarantined ? ExitAnalysisFailure : ExitSuccess;
} catch (const std::exception &Error) {
  std::cerr << "internal error: " << Error.what() << "\n";
  return ExitInternalError;
} catch (...) {
  std::cerr << "internal error: unknown exception\n";
  return ExitInternalError;
}
