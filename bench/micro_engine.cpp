//===- bench/micro_engine.cpp - Engine micro-benchmarks -------------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks for the engine primitives: context-tuple
/// interning, sorted-set insertion, whole-program solving on a fixed
/// profile, the Datalog engine's transitive closure, and the introspection
/// metric queries.  Not part of the paper; used to watch for regressions in
/// the substrate the figures depend on.
///
//===----------------------------------------------------------------------===//

#include "analysis/Context.h"
#include "analysis/ContextPolicy.h"
#include "analysis/Solver.h"
#include "datalog/Engine.h"
#include "introspect/Metrics.h"
#include "support/Rng.h"
#include "support/SetUtils.h"
#include "support/Trace.h"
#include "workload/DaCapo.h"

#include <benchmark/benchmark.h>

using namespace intro;

static void BM_ContextInterning(benchmark::State &State) {
  for (auto _ : State) {
    ContextTable Table;
    Rng R(7);
    for (int Index = 0; Index < 10000; ++Index) {
      std::array<uint32_t, 2> Elements = {R.below(512), R.below(512)};
      benchmark::DoNotOptimize(Table.internCtx(Elements));
    }
  }
}
BENCHMARK(BM_ContextInterning);

static void BM_SortedSetInsert(benchmark::State &State) {
  Rng R(11);
  for (auto _ : State) {
    SortedIdSet Set;
    for (int Index = 0; Index < 4096; ++Index)
      setInsert(Set, R.below(8192));
    benchmark::DoNotOptimize(Set.size());
  }
}
BENCHMARK(BM_SortedSetInsert);

static void BM_SolveInsensChart(benchmark::State &State) {
  Program Prog = generateWorkload(dacapoProfile("chart"));
  auto Policy = makeInsensitivePolicy();
  for (auto _ : State) {
    ContextTable Table;
    PointsToResult Result = solvePointsTo(Prog, *Policy, Table);
    benchmark::DoNotOptimize(Result.Stats.VarPointsToTuples);
  }
}
BENCHMARK(BM_SolveInsensChart);

static void BM_Solve2objHChart(benchmark::State &State) {
  Program Prog = generateWorkload(dacapoProfile("chart"));
  auto Policy = makeObjectPolicy(Prog, 2, 1);
  for (auto _ : State) {
    ContextTable Table;
    PointsToResult Result = solvePointsTo(Prog, *Policy, Table);
    benchmark::DoNotOptimize(Result.Stats.VarPointsToTuples);
  }
}
BENCHMARK(BM_Solve2objHChart);

static void BM_DatalogTransitiveClosure(benchmark::State &State) {
  for (auto _ : State) {
    datalog::Engine E;
    uint32_t Edge = E.addRelation("edge", 2);
    uint32_t Path = E.addRelation("path", 2);
    using datalog::Atom;
    using datalog::Rule;
    using datalog::Term;
    E.addRule(Rule{{Atom{Path, {Term::var(0), Term::var(1)}}},
                   {Atom{Edge, {Term::var(0), Term::var(1)}}},
                   {}});
    E.addRule(Rule{{Atom{Path, {Term::var(0), Term::var(2)}}},
                   {Atom{Path, {Term::var(0), Term::var(1)}},
                    Atom{Edge, {Term::var(1), Term::var(2)}}},
                   {}});
    for (uint32_t Node = 0; Node < 128; ++Node)
      E.relation(Edge).insert(std::array<uint32_t, 2>{Node, Node + 1});
    benchmark::DoNotOptimize(E.run().TuplesDerived);
  }
}
BENCHMARK(BM_DatalogTransitiveClosure);

// --- Tracing overhead -------------------------------------------------------
//
// BM_TraceOffEventSite prices one TRACE_* site with no recorder installed:
// the documented cost is a relaxed atomic load plus a predictable branch.
// Compare against an -DINTRO_TRACE=OFF build (where the site compiles to
// nothing) to verify the "zero-cost when disabled" claim; compare
// BM_SolveInsensChart before/after instrumented builds for the < 2%
// whole-solver criterion.

static void BM_TraceOffEventSite(benchmark::State &State) {
  uint64_t Value = 0;
  for (auto _ : State) {
    TRACE_SPAN("micro.noop_span");
    TRACE_COUNTER("micro.noop_counter", 1);
    benchmark::DoNotOptimize(++Value);
  }
}
BENCHMARK(BM_TraceOffEventSite);

static void BM_TraceOnCounterAdd(benchmark::State &State) {
  trace::Recorder Rec;
  Rec.start();
  for (auto _ : State)
    TRACE_COUNTER("micro.active_counter", 1);
  Rec.stop();
}
BENCHMARK(BM_TraceOnCounterAdd);

static void BM_TraceOnSpan(benchmark::State &State) {
  trace::Recorder Rec;
  Rec.start();
  for (auto _ : State) {
    TRACE_SPAN("micro.active_span");
    benchmark::ClobberMemory();
  }
  Rec.stop();
}
// Fixed iteration count: an active span appends two events per iteration
// into the per-thread buffer, so a benchmark-chosen iteration count could
// grow the log without bound.
BENCHMARK(BM_TraceOnSpan)->Iterations(1 << 16);

static void BM_IntrospectionMetrics(benchmark::State &State) {
  Program Prog = generateWorkload(dacapoProfile("chart"));
  auto Policy = makeInsensitivePolicy();
  ContextTable Table;
  PointsToResult Result = solvePointsTo(Prog, *Policy, Table);
  for (auto _ : State) {
    IntrospectionMetrics Metrics = computeIntrospectionMetrics(Prog, Result);
    benchmark::DoNotOptimize(Metrics.InFlow.size());
  }
}
BENCHMARK(BM_IntrospectionMetrics);

BENCHMARK_MAIN();
