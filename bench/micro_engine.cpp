//===- bench/micro_engine.cpp - Engine micro-benchmarks -------------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks for the engine primitives: context-tuple
/// interning, sorted-set insertion, whole-program solving on a fixed
/// profile, the Datalog engine's transitive closure, and the introspection
/// metric queries.  Not part of the paper; used to watch for regressions in
/// the substrate the figures depend on.
///
//===----------------------------------------------------------------------===//

#include "analysis/Context.h"
#include "analysis/ContextPolicy.h"
#include "analysis/Solver.h"
#include "datalog/Engine.h"
#include "introspect/Metrics.h"
#include "ir/ProgramBuilder.h"
#include "support/Rng.h"
#include "support/SetUtils.h"
#include "support/Trace.h"
#include "workload/DaCapo.h"

#include <benchmark/benchmark.h>

using namespace intro;

namespace {

/// The hub-heavy flavor of the paper's bimodal inputs: \p NumSources feeder
/// variables whose allocation-site ids interleave (round-robin allocation
/// order), all merged into one hub variable by late copy edges, which then
/// fans out to \p NumConsumers more late edges.  Every merge into the hub
/// lands mid-set, and every consumer edge re-propagates the hub's full set
/// — exactly the propagation pattern that punishes per-object insertion.
Program hubHeavyProgram(uint32_t NumObjects, uint32_t NumSources,
                        uint32_t NumConsumers) {
  ProgramBuilder B;
  TypeId Object = B.cls("Object");
  TypeId Payload = B.cls("Payload", Object);
  MethodBuilder Main = B.method(Object, "main", 0, /*IsStatic=*/true);
  B.entry(Main.id());

  std::vector<VarId> Sources;
  Sources.reserve(NumSources);
  for (uint32_t Index = 0; Index < NumSources; ++Index)
    Sources.push_back(Main.local("s" + std::to_string(Index)));
  // Round-robin allocation: source k owns heap ids k, k+S, k+2S, ... so the
  // per-source sets interleave when merged.
  for (uint32_t Index = 0; Index < NumObjects; ++Index)
    Main.alloc(Sources[Index % NumSources], Payload);

  VarId Hub = Main.local("hub");
  for (VarId Source : Sources)
    Main.move(Hub, Source);
  for (uint32_t Index = 0; Index < NumConsumers; ++Index)
    Main.move(Main.local("c" + std::to_string(Index)), Hub);
  return B.take();
}

} // namespace

static void BM_ContextInterning(benchmark::State &State) {
  for (auto _ : State) {
    ContextTable Table;
    Rng R(7);
    for (int Index = 0; Index < 10000; ++Index) {
      std::array<uint32_t, 2> Elements = {R.below(512), R.below(512)};
      benchmark::DoNotOptimize(Table.internCtx(Elements));
    }
  }
}
BENCHMARK(BM_ContextInterning);

static void BM_SortedSetInsert(benchmark::State &State) {
  Rng R(11);
  for (auto _ : State) {
    SortedIdSet Set;
    for (int Index = 0; Index < 4096; ++Index)
      setInsert(Set, R.below(8192));
    benchmark::DoNotOptimize(Set.size());
  }
}
BENCHMARK(BM_SortedSetInsert);

static void BM_SolveInsensChart(benchmark::State &State) {
  Program Prog = generateWorkload(dacapoProfile("chart"));
  auto Policy = makeInsensitivePolicy();
  for (auto _ : State) {
    ContextTable Table;
    PointsToResult Result = solvePointsTo(Prog, *Policy, Table);
    benchmark::DoNotOptimize(Result.Stats.VarPointsToTuples);
  }
}
BENCHMARK(BM_SolveInsensChart);

static void BM_Solve2objHChart(benchmark::State &State) {
  Program Prog = generateWorkload(dacapoProfile("chart"));
  auto Policy = makeObjectPolicy(Prog, 2, 1);
  for (auto _ : State) {
    ContextTable Table;
    PointsToResult Result = solvePointsTo(Prog, *Policy, Table);
    benchmark::DoNotOptimize(Result.Stats.VarPointsToTuples);
  }
}
BENCHMARK(BM_Solve2objHChart);

// The perf-trajectory benchmark behind BENCH_solver.json: throughput of the
// solver on the hub-heavy flavor.  The items-per-second counter is objects
// propagated (tuples derived), the quantity the adaptive representation is
// supposed to move faster.
static void BM_SolveHubHeavy(benchmark::State &State) {
  Program Prog = hubHeavyProgram(/*NumObjects=*/8192, /*NumSources=*/8,
                                 /*NumConsumers=*/64);
  auto Policy = makeInsensitivePolicy();
  uint64_t Tuples = 0;
  for (auto _ : State) {
    ContextTable Table;
    PointsToResult Result = solvePointsTo(Prog, *Policy, Table);
    Tuples = Result.Stats.VarPointsToTuples;
    benchmark::DoNotOptimize(Tuples);
  }
  State.SetItemsProcessed(static_cast<int64_t>(Tuples) * State.iterations());
}
BENCHMARK(BM_SolveHubHeavy)->Unit(benchmark::kMillisecond);

// Join-index hash datapoint: one body atom per relation means one JoinIndex
// entry per relation, so the engine's Indexes unordered_map sees exactly the
// (RelationIndex, Mask) key population that the old `(rel << 8) ^ mask`
// hash collapsed into a handful of buckets.  With 96 indexed relations this
// benchmark regressed ~linearly under the colliding hash and is flat under
// mixIndexKeyBits.
static void BM_DatalogManyIndexedJoins(benchmark::State &State) {
  using datalog::Atom;
  using datalog::Rule;
  using datalog::Term;
  constexpr uint32_t NumEdgeRelations = 96;
  for (auto _ : State) {
    datalog::Engine E;
    uint32_t Out = E.addRelation("out", 2);
    std::vector<uint32_t> Edges;
    for (uint32_t Rel = 0; Rel < NumEdgeRelations; ++Rel) {
      uint32_t Edge = E.addRelation("edge" + std::to_string(Rel), 2);
      Edges.push_back(Edge);
      // out(x, z) :- out(x, y), edgeR(y, z).  The second atom is looked up
      // with position 0 bound, so every edge relation gets its own index.
      E.addRule(Rule{{Atom{Out, {Term::var(0), Term::var(2)}}},
                     {Atom{Out, {Term::var(0), Term::var(1)}},
                      Atom{Edge, {Term::var(1), Term::var(2)}}},
                     {}});
      for (uint32_t Node = 0; Node < 8; ++Node)
        E.relation(Edge).insert(std::array<uint32_t, 2>{Node, Node + 1});
    }
    E.relation(Out).insert(std::array<uint32_t, 2>{0, 0});
    benchmark::DoNotOptimize(E.run().TuplesDerived);
  }
}
BENCHMARK(BM_DatalogManyIndexedJoins);

static void BM_DatalogTransitiveClosure(benchmark::State &State) {
  for (auto _ : State) {
    datalog::Engine E;
    uint32_t Edge = E.addRelation("edge", 2);
    uint32_t Path = E.addRelation("path", 2);
    using datalog::Atom;
    using datalog::Rule;
    using datalog::Term;
    E.addRule(Rule{{Atom{Path, {Term::var(0), Term::var(1)}}},
                   {Atom{Edge, {Term::var(0), Term::var(1)}}},
                   {}});
    E.addRule(Rule{{Atom{Path, {Term::var(0), Term::var(2)}}},
                   {Atom{Path, {Term::var(0), Term::var(1)}},
                    Atom{Edge, {Term::var(1), Term::var(2)}}},
                   {}});
    for (uint32_t Node = 0; Node < 128; ++Node)
      E.relation(Edge).insert(std::array<uint32_t, 2>{Node, Node + 1});
    benchmark::DoNotOptimize(E.run().TuplesDerived);
  }
}
BENCHMARK(BM_DatalogTransitiveClosure);

// --- Tracing overhead -------------------------------------------------------
//
// BM_TraceOffEventSite prices one TRACE_* site with no recorder installed:
// the documented cost is a relaxed atomic load plus a predictable branch.
// Compare against an -DINTRO_TRACE=OFF build (where the site compiles to
// nothing) to verify the "zero-cost when disabled" claim; compare
// BM_SolveInsensChart before/after instrumented builds for the < 2%
// whole-solver criterion.

static void BM_TraceOffEventSite(benchmark::State &State) {
  uint64_t Value = 0;
  for (auto _ : State) {
    TRACE_SPAN("micro.noop_span");
    TRACE_COUNTER("micro.noop_counter", 1);
    benchmark::DoNotOptimize(++Value);
  }
}
BENCHMARK(BM_TraceOffEventSite);

static void BM_TraceOnCounterAdd(benchmark::State &State) {
  trace::Recorder Rec;
  Rec.start();
  for (auto _ : State)
    TRACE_COUNTER("micro.active_counter", 1);
  Rec.stop();
}
BENCHMARK(BM_TraceOnCounterAdd);

static void BM_TraceOnSpan(benchmark::State &State) {
  trace::Recorder Rec;
  Rec.start();
  for (auto _ : State) {
    TRACE_SPAN("micro.active_span");
    benchmark::ClobberMemory();
  }
  Rec.stop();
}
// Fixed iteration count: an active span appends two events per iteration
// into the per-thread buffer, so a benchmark-chosen iteration count could
// grow the log without bound.
BENCHMARK(BM_TraceOnSpan)->Iterations(1 << 16);

static void BM_IntrospectionMetrics(benchmark::State &State) {
  Program Prog = generateWorkload(dacapoProfile("chart"));
  auto Policy = makeInsensitivePolicy();
  ContextTable Table;
  PointsToResult Result = solvePointsTo(Prog, *Policy, Table);
  for (auto _ : State) {
    IntrospectionMetrics Metrics = computeIntrospectionMetrics(Prog, Result);
    benchmark::DoNotOptimize(Metrics.InFlow.size());
  }
}
BENCHMARK(BM_IntrospectionMetrics);

BENCHMARK_MAIN();
