//===- bench/fig4_refinement_stats.cpp - Paper Figure 4 -------------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 4: the share of call sites and objects selected to
/// *not* be refined by each introspective heuristic (computed over the
/// context-insensitive first pass).  The paper's observations: Heuristic A
/// is much more aggressive, Heuristic B quite selective; either way the
/// refined elements are the overwhelming majority.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <iostream>

using namespace intro;
using namespace intro::bench;

int main() {
  std::cout << "Figure 4: call sites and objects selected to NOT be "
               "refined\n\n";

  // The paper's Figure 4 lists seven benchmarks (the six scalability
  // subjects plus pmd) and their average.
  std::vector<std::string> Names = {"bloat",  "chart",  "eclipse", "hsqldb",
                                    "jython", "pmd",    "xalan"};

  TableWriter Table({"benchmark", "call sites A", "call sites B", "objects A",
                     "objects B"});
  double SumSiteA = 0;
  double SumSiteB = 0;
  double SumObjA = 0;
  double SumObjB = 0;
  for (const std::string &Name : Names) {
    Program Prog = generateWorkload(dacapoProfile(Name));
    auto Insens = makeInsensitivePolicy();
    ContextTable Ctx;
    PointsToResult First = solvePointsTo(Prog, *Insens, Ctx);
    IntrospectionMetrics Metrics = computeIntrospectionMetrics(Prog, First);

    RefinementExceptions ExceptA = applyHeuristicA(Prog, First, Metrics);
    RefinementExceptions ExceptB = applyHeuristicB(Prog, First, Metrics);
    RefinementStats StatsA = computeRefinementStats(Prog, First, ExceptA);
    RefinementStats StatsB = computeRefinementStats(Prog, First, ExceptB);

    SumSiteA += StatsA.callSitePercent();
    SumSiteB += StatsB.callSitePercent();
    SumObjA += StatsA.objectPercent();
    SumObjB += StatsB.objectPercent();
    Table.addRow({Name, TableWriter::percent(StatsA.callSitePercent()),
                  TableWriter::percent(StatsB.callSitePercent()),
                  TableWriter::percent(StatsA.objectPercent()),
                  TableWriter::percent(StatsB.objectPercent())});
  }
  double Count = static_cast<double>(Names.size());
  Table.addRow({"average", TableWriter::percent(SumSiteA / Count),
                TableWriter::percent(SumSiteB / Count),
                TableWriter::percent(SumObjA / Count),
                TableWriter::percent(SumObjB / Count)});
  Table.print(std::cout);
  std::cout << "\nExpected shape (paper): A aggressive (double-digit\n"
               "percentages), B selective (call sites near zero, objects\n"
               "in the 0-19% range); refined elements are the vast "
               "majority.\n";
  return 0;
}
