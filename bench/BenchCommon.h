//===- bench/BenchCommon.h - Shared harness plumbing ------------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helpers for the figure-reproduction harnesses: the common resource
/// budget (the stand-in for the paper's 90-minute / 24 GB limit), analysis
/// runners, and result formatting.
///
//===----------------------------------------------------------------------===//

#ifndef BENCH_BENCHCOMMON_H
#define BENCH_BENCHCOMMON_H

#include "analysis/ContextPolicy.h"
#include "analysis/PrecisionMetrics.h"
#include "analysis/Solver.h"
#include "introspect/Driver.h"
#include "ir/Program.h"
#include "support/TableWriter.h"
#include "workload/DaCapo.h"

#include <memory>
#include <string>

namespace intro::bench {

/// The deep-analysis resource budget.  Exceeding it is reported as the
/// paper's "did not terminate in 90 minutes".  Tuple-based, so the
/// bimodality verdicts are machine-independent.
inline SolveBudget deepBudget() {
  SolveBudget Budget;
  Budget.MaxTuples = 12'000'000;
  Budget.MaxSeconds = 120.0;
  return Budget;
}

/// Context-sensitivity flavors evaluated in Figures 5-7.
enum class Flavor { Object, Type, CallSite };

inline const char *flavorName(Flavor F) {
  switch (F) {
  case Flavor::Object:
    return "2objH";
  case Flavor::Type:
    return "2typeH";
  case Flavor::CallSite:
    return "2callH";
  }
  return "?";
}

inline std::unique_ptr<ContextPolicy> makeFlavor(Flavor F,
                                                 const Program &Prog) {
  switch (F) {
  case Flavor::Object:
    return makeObjectPolicy(Prog, 2, 1);
  case Flavor::Type:
    return makeTypePolicy(Prog, 2, 1);
  case Flavor::CallSite:
    return makeCallSitePolicy(2, 1);
  }
  return nullptr;
}

/// One analysis run's reportable outcome.
struct RunOutcome {
  std::string Analysis;
  bool Completed = false;
  double Seconds = 0;
  PrecisionMetrics Precision;
  uint64_t Tuples = 0;
  RefinementStats Refinement; ///< Only for introspective runs.
};

/// Runs \p Policy on \p Prog under the deep budget.
inline RunOutcome runPlain(const Program &Prog, const ContextPolicy &Policy) {
  ContextTable Table;
  SolverOptions Options;
  Options.Budget = deepBudget();
  PointsToResult Result = solvePointsTo(Prog, Policy, Table, Options);
  RunOutcome Outcome;
  Outcome.Analysis = Policy.name();
  Outcome.Completed = isCompleted(Result.Status);
  Outcome.Seconds = Result.Stats.Seconds;
  Outcome.Tuples =
      Result.Stats.VarPointsToTuples + Result.Stats.FieldPointsToTuples;
  Outcome.Precision = computePrecision(Prog, Result);
  return Outcome;
}

/// Runs the full two-pass introspective analysis with \p Heuristic.
inline RunOutcome runIntro(const Program &Prog, Flavor F,
                           HeuristicKind Heuristic) {
  IntrospectiveOptions Options;
  Options.Heuristic = Heuristic;
  Options.SecondPassBudget = deepBudget();
  auto Refined = makeFlavor(F, Prog);
  IntrospectiveOutcome Out = runIntrospective(Prog, *Refined, Options);
  RunOutcome Outcome;
  Outcome.Analysis = Out.SecondPass.AnalysisName;
  Outcome.Completed = isCompleted(Out.SecondPass.Status);
  Outcome.Seconds = Out.SecondPassSeconds;
  Outcome.Tuples = Out.SecondPass.Stats.VarPointsToTuples +
                   Out.SecondPass.Stats.FieldPointsToTuples;
  Outcome.Precision = computePrecision(Prog, Out.SecondPass);
  Outcome.Refinement = Out.Stats;
  return Outcome;
}

/// Formats a time cell: seconds, or the paper's "did not terminate".
inline std::string timeCell(const RunOutcome &Outcome) {
  if (!Outcome.Completed)
    return "DNF";
  return TableWriter::num(Outcome.Seconds, 2) + " s";
}

/// Formats a precision cell, blank for non-terminating runs (as in the
/// paper's figures, where timed-out analyses have no precision bars).
inline std::string precCell(const RunOutcome &Outcome, uint64_t Value) {
  if (!Outcome.Completed)
    return "-";
  return TableWriter::num(Value);
}

} // namespace intro::bench

#endif // BENCH_BENCHCOMMON_H
