//===- bench/BenchCommon.h - Shared harness plumbing ------------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helpers for the figure-reproduction harnesses: the common resource
/// budget (the stand-in for the paper's 90-minute / 24 GB limit), analysis
/// runners, and result formatting.
///
//===----------------------------------------------------------------------===//

#ifndef BENCH_BENCHCOMMON_H
#define BENCH_BENCHCOMMON_H

#include "analysis/ContextPolicy.h"
#include "analysis/PrecisionMetrics.h"
#include "analysis/Reports.h"
#include "analysis/Solver.h"
#include "cache/ResultCache.h"
#include "introspect/Driver.h"
#include "ir/Program.h"
#include "support/ExitCodes.h"
#include "support/Json.h"
#include "support/ParseNum.h"
#include "support/Socket.h"
#include "support/Subprocess.h"
#include "support/TableWriter.h"
#include "support/Trace.h"
#include "workload/DaCapo.h"

#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <string>

namespace intro::bench {

/// The deep-analysis resource budget.  Exceeding it is reported as the
/// paper's "did not terminate in 90 minutes".  Tuple-based, so the
/// bimodality verdicts are machine-independent.
inline SolveBudget deepBudget() {
  SolveBudget Budget;
  Budget.MaxTuples = 12'000'000;
  Budget.MaxSeconds = 120.0;
  return Budget;
}

/// Context-sensitivity flavors evaluated in Figures 5-7.
enum class Flavor { Object, Type, CallSite };

inline const char *flavorName(Flavor F) {
  switch (F) {
  case Flavor::Object:
    return "2objH";
  case Flavor::Type:
    return "2typeH";
  case Flavor::CallSite:
    return "2callH";
  }
  return "?";
}

inline std::unique_ptr<ContextPolicy> makeFlavor(Flavor F,
                                                 const Program &Prog) {
  switch (F) {
  case Flavor::Object:
    return makeObjectPolicy(Prog, 2, 1);
  case Flavor::Type:
    return makeTypePolicy(Prog, 2, 1);
  case Flavor::CallSite:
    return makeCallSitePolicy(2, 1);
  }
  return nullptr;
}

/// One analysis run's reportable outcome.
struct RunOutcome {
  std::string Analysis;
  std::string Status; ///< SolveStatus name of the (final) solver run.
  bool Completed = false;
  double Seconds = 0;
  PrecisionMetrics Precision;
  uint64_t Tuples = 0;
  SolverStats Stats;          ///< Full counters of the (final) solver run.
  RefinementStats Refinement; ///< Only for introspective runs.
};

/// Runs \p Policy on \p Prog under the deep budget.
inline RunOutcome runPlain(const Program &Prog, const ContextPolicy &Policy) {
  ContextTable Table;
  SolverOptions Options;
  Options.Budget = deepBudget();
  PointsToResult Result = solvePointsTo(Prog, Policy, Table, Options);
  RunOutcome Outcome;
  Outcome.Analysis = Policy.name();
  Outcome.Status = statusName(Result.Status);
  Outcome.Completed = isCompleted(Result.Status);
  Outcome.Seconds = Result.Stats.Seconds;
  Outcome.Tuples =
      Result.Stats.VarPointsToTuples + Result.Stats.FieldPointsToTuples;
  Outcome.Stats = Result.Stats;
  Outcome.Precision = computePrecision(Prog, Result);
  return Outcome;
}

/// Runs the full two-pass introspective analysis with \p Heuristic.  A
/// non-null \p Cache (plus \p CacheKey) lets the driver reload the shared
/// context-insensitive pre-analysis instead of re-solving it — the IntroA
/// and IntroB cells of one subject have an identical Pass A, and a warm
/// rerun of the whole figure skips every Pass A.
inline RunOutcome runIntro(const Program &Prog, Flavor F,
                           HeuristicKind Heuristic,
                           cache::ResultCache *Cache = nullptr,
                           const cache::Fingerprint *CacheKey = nullptr) {
  IntrospectiveOptions Options;
  Options.Heuristic = Heuristic;
  Options.SecondPassBudget = deepBudget();
  Options.Cache = Cache;
  Options.CacheKey = CacheKey;
  auto Refined = makeFlavor(F, Prog);
  IntrospectiveOutcome Out = runIntrospective(Prog, *Refined, Options);
  RunOutcome Outcome;
  Outcome.Analysis = Out.SecondPass.AnalysisName;
  Outcome.Status = statusName(Out.SecondPass.Status);
  Outcome.Completed = isCompleted(Out.SecondPass.Status);
  Outcome.Seconds = Out.SecondPassSeconds;
  Outcome.Tuples = Out.SecondPass.Stats.VarPointsToTuples +
                   Out.SecondPass.Stats.FieldPointsToTuples;
  Outcome.Stats = Out.SecondPass.Stats;
  Outcome.Precision = computePrecision(Prog, Out.SecondPass);
  Outcome.Refinement = Out.Stats;
  return Outcome;
}

/// Formats a time cell: seconds, or the paper's "did not terminate".
inline std::string timeCell(const RunOutcome &Outcome) {
  if (!Outcome.Completed)
    return "DNF";
  return TableWriter::num(Outcome.Seconds, 2) + " s";
}

/// Formats a precision cell, blank for non-terminating runs (as in the
/// paper's figures, where timed-out analyses have no precision bars).
inline std::string precCell(const RunOutcome &Outcome, uint64_t Value) {
  if (!Outcome.Completed)
    return "-";
  return TableWriter::num(Value);
}

/// One RunOutcome as a JSON object — the wire format a supervised cell's
/// child uses to hand its result back over the pipe.
inline void writeRunOutcomeJson(JsonWriter &J, const RunOutcome &Outcome) {
  J.beginObject();
  J.key("analysis");
  J.value(Outcome.Analysis);
  J.key("status");
  J.value(Outcome.Status);
  J.key("completed");
  J.value(Outcome.Completed);
  J.key("seconds");
  J.value(Outcome.Seconds);
  J.key("tuples");
  J.value(Outcome.Tuples);
  J.key("precision");
  J.beginObject();
  J.key("poly_virtual_call_sites");
  J.value(Outcome.Precision.PolymorphicVirtualCallSites);
  J.key("reachable_methods");
  J.value(Outcome.Precision.ReachableMethods);
  J.key("casts_that_may_fail");
  J.value(Outcome.Precision.CastsThatMayFail);
  J.key("reachable_virtual_call_sites");
  J.value(Outcome.Precision.ReachableVirtualCallSites);
  J.key("reachable_casts");
  J.value(Outcome.Precision.ReachableCasts);
  J.endObject();
  J.key("stats");
  writeSolverStatsJson(J, Outcome.Stats);
  J.endObject();
}

/// Inverse of writeRunOutcomeJson.  \returns false when \p Value is not an
/// object (missing members keep their defaults, as in the other report
/// decoders).
inline bool parseRunOutcomeJson(const JsonValue &Value, RunOutcome &Outcome) {
  if (!Value.isObject())
    return false;
  Value.getString("analysis", Outcome.Analysis);
  Value.getString("status", Outcome.Status);
  Value.getBool("completed", Outcome.Completed);
  Value.getDouble("seconds", Outcome.Seconds);
  Value.getUint("tuples", Outcome.Tuples);
  if (const JsonValue *Precision = Value.get("precision")) {
    Precision->getUint("poly_virtual_call_sites",
                       Outcome.Precision.PolymorphicVirtualCallSites);
    Precision->getUint("reachable_methods",
                       Outcome.Precision.ReachableMethods);
    Precision->getUint("casts_that_may_fail",
                       Outcome.Precision.CastsThatMayFail);
    Precision->getUint("reachable_virtual_call_sites",
                       Outcome.Precision.ReachableVirtualCallSites);
    Precision->getUint("reachable_casts", Outcome.Precision.ReachableCasts);
  }
  if (const JsonValue *Stats = Value.get("stats"))
    parseSolverStatsJson(*Stats, Outcome.Stats);
  return true;
}

/// Runs one sweep cell inside a forked, watchdog-guarded child
/// (`--supervised`): a cell that segfaults or hangs becomes a labelled DNF
/// row instead of taking the whole harness down.  The child returns its
/// RunOutcome as one JSON line over the pipe.
inline RunOutcome runSupervisedCell(const std::function<RunOutcome()> &Cell) {
  ChildLimits Limits;
  // Comfortably above the deep budget's wall limit: the watchdog is a
  // backstop for cells that escape the cooperative budget, not a second,
  // tighter timeout.
  Limits.WallDeadlineSeconds = deepBudget().MaxSeconds * 2;
  ChildResult Child =
      runSupervisedChild(Limits, [&Cell](std::ostream &Report) {
        RunOutcome Out = Cell();
        JsonWriter J(Report);
        writeRunOutcomeJson(J, Out);
        Report << '\n';
        return 0;
      });
  RunOutcome Outcome;
  if (Child.Status == ChildStatus::CleanExit) {
    JsonParseResult Parsed = parseJson(Child.Output);
    if (Parsed.ok() && parseRunOutcomeJson(Parsed.Value, Outcome))
      return Outcome;
  }
  // The child died (or garbled its report): render the cell as DNF,
  // labelled with the process-level fate instead of a SolveStatus.
  Outcome.Analysis = "?";
  Outcome.Status = childStatusName(Child.Status);
  Outcome.Completed = false;
  Outcome.Seconds = Child.Seconds;
  return Outcome;
}

/// \returns true if `--supervised` is on the command line.
inline bool supervisedFlag(int argc, char **argv) {
  for (int Index = 1; Index < argc; ++Index)
    if (std::string(argv[Index]) == "--supervised")
      return true;
  return false;
}

/// Strict command-line validation for the fig harnesses: every argument
/// must be a known, well-formed flag.  \returns -1 to continue, or the
/// exit code to bail with (ExitBadInput plus a diagnostic on stderr) —
/// unknown flags must not be silently ignored, or a typo like
/// `--worker=8` silently benchmarks with the wrong configuration.
inline int checkFigArgs(int argc, char **argv) {
  // Every fig harness passes through here first, so this is the one spot
  // that arms the repo's SIGPIPE policy for all of them: `fig5 | head`
  // must finish its sweep and report EPIPE-aware, not die on signal 13
  // the moment the pager closes (support/Socket.h).
  ignoreSigPipe();
  for (int Index = 1; Index < argc; ++Index) {
    std::string Arg = argv[Index];
    if (Arg == "--supervised")
      continue;
    if (Arg.compare(0, 10, "--workers=") == 0) {
      // Strict range-checked parse: sweepWorkers clamps for the untyped
      // INTRO_WORKERS environment fallback, but an explicit flag that
      // overflows or is out of range must be an error, not a silent clamp.
      uint32_t Workers = 0;
      std::string Error;
      if (!parseU32("--workers", Arg.substr(10), 1, 1024, Workers, Error)) {
        std::cerr << "error: " << Error << "\n";
        return ExitBadInput;
      }
      continue;
    }
    if (Arg.compare(0, 8, "--trace=") == 0) {
      if (Arg.size() == 8) {
        std::cerr << "error: --trace needs a file path\n";
        return ExitBadInput;
      }
      continue;
    }
    if (Arg.compare(0, 12, "--cache-dir=") == 0) {
      if (Arg.size() == 12) {
        std::cerr << "error: --cache-dir needs a directory path\n";
        return ExitBadInput;
      }
      continue;
    }
    std::cerr << "error: unknown argument '" << Arg
              << "' (known: --workers=N, --trace=FILE, --cache-dir=DIR, "
                 "--supervised)\n";
    return ExitBadInput;
  }
  return -1;
}

/// Extracts the `--trace=FILE` flag from the command line; empty string if
/// absent.  FILE receives the Chrome trace_event JSON; the flat run report
/// lands next to it (see TraceSession).
inline std::string traceFile(int argc, char **argv) {
  const std::string Flag = "--trace=";
  for (int Index = 1; Index < argc; ++Index) {
    std::string Arg = argv[Index];
    if (Arg.compare(0, Flag.size(), Flag) == 0 && Arg.size() > Flag.size())
      return Arg.substr(Flag.size());
  }
  return std::string();
}

/// Extracts the `--cache-dir=DIR` flag: the Pass-A result-cache directory
/// shared by the introspective cells (and by reruns of the harness); empty
/// string when absent, which disables caching.
inline std::string cacheDirFlag(int argc, char **argv) {
  const std::string Flag = "--cache-dir=";
  for (int Index = 1; Index < argc; ++Index) {
    std::string Arg = argv[Index];
    if (Arg.compare(0, Flag.size(), Flag) == 0 && Arg.size() > Flag.size())
      return Arg.substr(Flag.size());
  }
  return std::string();
}

/// \returns the run-report path belonging to trace path \p TracePath:
/// `out.json` -> `out.report.json`; any other name just appends
/// `.report.json`.
inline std::string reportPathFor(const std::string &TracePath) {
  const std::string Suffix = ".json";
  if (TracePath.size() > Suffix.size() &&
      TracePath.compare(TracePath.size() - Suffix.size(), Suffix.size(),
                        Suffix) == 0)
    return TracePath.substr(0, TracePath.size() - Suffix.size()) +
           ".report.json";
  return TracePath + ".report.json";
}

/// Harness-side tracing session: installs a trace::Recorder when the
/// `--trace=FILE` flag is present, and on finish() writes
///
///   FILE             — Chrome trace_event JSON (chrome://tracing, Perfetto)
///   *.report.json    — the flat machine-readable run report:
///                      { "schema": ..., "deterministic": {...},
///                        "timing": {...} }
///
/// The "deterministic" object (trace counters/span counts + the
/// harness-provided bench section) is byte-identical across worker counts
/// for a deterministic workload; everything wall-clock lives under
/// "timing".  The two writer callbacks must each emit exactly one JSON
/// value (the bench sections).
class TraceSession {
public:
  explicit TraceSession(std::string TracePath) : Path(std::move(TracePath)) {
    if (enabled())
      Rec.start();
  }

  bool enabled() const { return !Path.empty(); }

  /// Stops recording and writes both files.  Call after all worker threads
  /// have been joined (the flush contract of support/Trace.h); the sweep
  /// runner's pool is destroyed before runSweep returns, so calling this
  /// after runSweep is safe.
  template <typename DeterministicFn, typename TimingFn>
  void finish(DeterministicFn &&WriteDeterministicBench,
              TimingFn &&WriteTimingBench) {
    if (!enabled())
      return;
    Rec.stop();

    std::ofstream TraceOut(Path);
    if (!TraceOut) {
      std::cerr << "error: cannot write trace file: " << Path << "\n";
      return;
    }
    Rec.writeChromeTrace(TraceOut);

    std::string ReportPath = reportPathFor(Path);
    std::ofstream ReportOut(ReportPath);
    if (!ReportOut) {
      std::cerr << "error: cannot write run report: " << ReportPath << "\n";
      return;
    }
    JsonWriter J(ReportOut);
    J.beginObject();
    J.key("schema");
    J.value("intro-run-report-v1");
    J.key("deterministic");
    J.beginObject();
    J.key("trace");
    Rec.writeDeterministicSummary(J);
    J.key("bench");
    WriteDeterministicBench(J);
    J.endObject();
    J.key("timing");
    J.beginObject();
    J.key("span_seconds");
    J.beginObject();
    for (const auto &[Name, Summary] : Rec.spans()) {
      J.key(Name);
      J.value(static_cast<double>(Summary.TotalNs) / 1e9);
    }
    J.endObject();
    J.key("bench");
    WriteTimingBench(J);
    J.endObject();
    J.endObject();
    ReportOut << '\n';
    std::cout << "\ntrace written: " << Path << "\nrun report: " << ReportPath
              << "\n";
  }

private:
  std::string Path;
  trace::Recorder Rec;
};

} // namespace intro::bench

#endif // BENCH_BENCHCOMMON_H
