//===- bench/ablation_components.cpp - Heuristic component ablation -------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation over the *components* of the heuristics (a DESIGN.md question
/// the paper leaves implicit): which of Heuristic A's rules does the
/// scalability work — the object rule (pointed-by-vars), the in-flow site
/// rule, or the max-var-field site rule?  Runs 2objH-based introspective
/// analyses with each rule in isolation, pairwise, and all together, on
/// the two object-sensitivity-pathological benchmarks.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "Sweep.h"

#include "introspect/Custom.h"

#include <iostream>

using namespace intro;
using namespace intro::bench;

namespace {

struct Variant {
  const char *Label;
  bool ObjectRule;
  bool InFlowRule;
  bool VarFieldRule;
};

RunOutcome runVariant(const Program &Prog, const Variant &V) {
  auto Insens = makeInsensitivePolicy();
  ContextTable First;
  PointsToResult Pass1 = solvePointsTo(Prog, *Insens, First);
  IntrospectionMetrics Metrics = computeIntrospectionMetrics(Prog, Pass1);

  HeuristicAParams Defaults;
  CustomHeuristic H;
  H.Name = V.Label;
  if (V.ObjectRule)
    H.ObjectRules.push_back(
        ObjectRule{Metric::PointedByVars, Metric::None, Defaults.K});
  if (V.InFlowRule)
    H.SiteRules.push_back(
        SiteRule{SiteProperty::CallSite, Metric::InFlow, Defaults.L});
  if (V.VarFieldRule)
    H.SiteRules.push_back(SiteRule{SiteProperty::TargetMethod,
                                   Metric::MethodMaxVarFieldPointsTo,
                                   Defaults.M});
  RefinementExceptions Exceptions =
      applyCustomHeuristic(Prog, Pass1, Metrics, H);

  auto Refined = makeObjectPolicy(Prog, 2, 1);
  auto Policy = makeIntrospectivePolicy(std::string("2objH-") + V.Label,
                                        *Insens, *Refined, Exceptions);
  ContextTable Table;
  SolverOptions Options;
  Options.Budget = deepBudget();
  PointsToResult Result = solvePointsTo(Prog, *Policy, Table, Options);

  RunOutcome Outcome;
  Outcome.Completed = isCompleted(Result.Status);
  Outcome.Seconds = Result.Stats.Seconds;
  Outcome.Tuples =
      Result.Stats.VarPointsToTuples + Result.Stats.FieldPointsToTuples;
  Outcome.Precision = computePrecision(Prog, Result);
  Outcome.Refinement = computeRefinementStats(Prog, Pass1, Exceptions);
  return Outcome;
}

} // namespace

int main(int argc, char **argv) {
  std::cout << "Ablation: which Heuristic A component provides the "
               "scalability?\n2objH-based introspective runs; rules at "
               "paper-default constants.\n\n";

  const Variant Variants[] = {
      {"none (=full 2objH)", false, false, false},
      {"objects only (K)", true, false, false},
      {"in-flow only (L)", false, true, false},
      {"var-field only (M)", false, false, true},
      {"sites only (L+M)", false, true, true},
      {"full A (K+L+M)", true, true, true},
  };
  const char *Names[] = {"hsqldb", "jython"};
  const size_t NumVariants = std::size(Variants);

  std::vector<Program> Programs;
  for (const char *Name : Names)
    Programs.push_back(generateWorkload(dacapoProfile(Name)));

  // Sweep the (benchmark, variant) matrix in parallel, print in order.
  std::vector<RunOutcome> Cells = runSweep(
      std::size(Names) * NumVariants, sweepWorkers(argc, argv),
      [&](size_t Index) {
        return runVariant(Programs[Index / NumVariants],
                          Variants[Index % NumVariants]);
      });

  for (size_t Benchmark = 0; Benchmark < std::size(Names); ++Benchmark) {
    std::cout << "benchmark: " << Names[Benchmark] << "\n";
    TableWriter Table({"rules", "status", "tuples", "poly sites",
                       "casts may fail", "sites excl", "objs excl"});
    for (size_t Index = 0; Index < NumVariants; ++Index) {
      const RunOutcome &Out = Cells[Benchmark * NumVariants + Index];
      Table.addRow({Variants[Index].Label,
                    Out.Completed ? "completed" : "DNF",
                    TableWriter::num(Out.Tuples),
                    precCell(Out, Out.Precision.PolymorphicVirtualCallSites),
                    precCell(Out, Out.Precision.CastsThatMayFail),
                    TableWriter::percent(Out.Refinement.callSitePercent()),
                    TableWriter::percent(Out.Refinement.objectPercent())});
    }
    Table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Expected shape: the site rules (driven by in-flow and\n"
               "var-field metrics) do the heavy lifting; the object rule\n"
               "alone cannot stop head-driven context growth.\n";
  return 0;
}
