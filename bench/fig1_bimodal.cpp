//===- bench/fig1_bimodal.cpp - Paper Figure 1 ----------------------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 1: running time of a context-insensitive analysis vs.
/// 2-object-sensitive with a context-sensitive heap (2objH), across all nine
/// DaCapo-shaped benchmarks.  The paper's point is bimodality: insens varies
/// little, while 2objH explodes on some subjects (hsqldb and jython time
/// out; the figure's y-axis is truncated because of bloat-like outliers).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <iostream>

using namespace intro;
using namespace intro::bench;

int main() {
  std::cout << "Figure 1: context-insensitive vs 2objH running time\n"
            << "(DNF = resource budget exceeded, the paper's 90-min "
               "timeout)\n\n";

  TableWriter Table({"benchmark", "insens", "2objH", "2objH/insens",
                     "insens tuples", "2objH tuples"});
  for (const WorkloadProfile &Profile : dacapoProfiles()) {
    Program Prog = generateWorkload(Profile);
    auto Insens = makeInsensitivePolicy();
    RunOutcome Base = runPlain(Prog, *Insens);
    auto Deep = makeObjectPolicy(Prog, 2, 1);
    RunOutcome Obj = runPlain(Prog, *Deep);

    std::string Ratio =
        Obj.Completed && Base.Seconds > 0
            ? TableWriter::num(Obj.Seconds / Base.Seconds, 1) + "x"
            : "-";
    Table.addRow({Profile.Name, timeCell(Base), timeCell(Obj), Ratio,
                  TableWriter::num(Base.Tuples), TableWriter::num(Obj.Tuples)});
  }
  Table.print(std::cout);
  std::cout << "\nExpected shape (paper): insens uniform; 2objH explodes on\n"
               "hsqldb and jython, and is an order of magnitude slower on\n"
               "outliers like bloat and xalan.\n";
  return 0;
}
