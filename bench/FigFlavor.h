//===- bench/FigFlavor.h - Shared Figures 5/6/7 harness ---------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figures 5, 6, and 7 have identical structure — running time plus three
/// precision metrics for { insens, <flavor>-IntroA, <flavor>-IntroB,
/// <flavor> } over the six scalability subjects — differing only in the
/// context-sensitivity flavor.  This header implements the harness once.
///
//===----------------------------------------------------------------------===//

#ifndef BENCH_FIGFLAVOR_H
#define BENCH_FIGFLAVOR_H

#include "BenchCommon.h"

#include <iostream>
#include <vector>

namespace intro::bench {

/// Emits the paper-style rows for one figure.
inline int runFlavorFigure(Flavor F, const char *FigureName,
                           const char *ExpectedShape) {
  std::cout << FigureName << ": performance and precision for introspective "
            << flavorName(F) << " variants\n"
            << "(DNF = resource budget exceeded; precision cells of DNF "
               "runs are '-')\n\n";

  TableWriter Times({"benchmark", "insens", std::string(flavorName(F)) +
                                                "-IntroA",
                     std::string(flavorName(F)) + "-IntroB", flavorName(F)});
  TableWriter Poly({"benchmark", "insens", "IntroA", "IntroB", "full"});
  TableWriter Reach({"benchmark", "insens", "IntroA", "IntroB", "full"});
  TableWriter Casts({"benchmark", "insens", "IntroA", "IntroB", "full"});

  for (const WorkloadProfile &Profile : scalabilitySubjects()) {
    Program Prog = generateWorkload(Profile);
    auto Insens = makeInsensitivePolicy();
    RunOutcome Base = runPlain(Prog, *Insens);
    RunOutcome IntroA = runIntro(Prog, F, HeuristicKind::A);
    RunOutcome IntroB = runIntro(Prog, F, HeuristicKind::B);
    auto Full = makeFlavor(F, Prog);
    RunOutcome Deep = runPlain(Prog, *Full);

    Times.addRow({Profile.Name, timeCell(Base), timeCell(IntroA),
                  timeCell(IntroB), timeCell(Deep)});
    auto AddPrecision = [&](TableWriter &Table, auto Member) {
      Table.addRow({Profile.Name, precCell(Base, Base.Precision.*Member),
                    precCell(IntroA, IntroA.Precision.*Member),
                    precCell(IntroB, IntroB.Precision.*Member),
                    precCell(Deep, Deep.Precision.*Member)});
    };
    AddPrecision(Poly, &PrecisionMetrics::PolymorphicVirtualCallSites);
    AddPrecision(Reach, &PrecisionMetrics::ReachableMethods);
    AddPrecision(Casts, &PrecisionMetrics::CastsThatMayFail);
  }

  std::cout << "Running time\n";
  Times.print(std::cout);
  std::cout << "\nPolymorphic virtual call sites (lower is more precise)\n";
  Poly.print(std::cout);
  std::cout << "\nReachable methods (lower is more precise)\n";
  Reach.print(std::cout);
  std::cout << "\nReachable casts that may fail (lower is more precise)\n";
  Casts.print(std::cout);
  std::cout << "\nExpected shape (paper): " << ExpectedShape << "\n";
  return 0;
}

} // namespace intro::bench

#endif // BENCH_FIGFLAVOR_H
