//===- bench/FigFlavor.h - Shared Figures 5/6/7 harness ---------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figures 5, 6, and 7 have identical structure — running time plus three
/// precision metrics for { insens, <flavor>-IntroA, <flavor>-IntroB,
/// <flavor> } over the six scalability subjects — differing only in the
/// context-sensitivity flavor.  This header implements the harness once.
///
/// The (subject x analysis) matrix is swept in parallel (bench/Sweep.h):
/// every cell is an independent solver run over a read-only Program, the
/// results land in a dense vector indexed by cell, and the tables are
/// printed afterwards in the fixed subject order — so the output is
/// byte-identical for any worker count.
///
//===----------------------------------------------------------------------===//

#ifndef BENCH_FIGFLAVOR_H
#define BENCH_FIGFLAVOR_H

#include "BenchCommon.h"
#include "Sweep.h"

#include <iostream>
#include <optional>
#include <vector>

namespace intro::bench {

/// Emits the paper-style rows for one figure, fanning the subject x
/// analysis cells over \p Workers threads.  A non-empty \p TracePath
/// additionally records a structured trace of the whole sweep and writes
/// the Chrome trace plus the machine-readable run report (BenchCommon.h's
/// TraceSession).
inline int runFlavorFigure(Flavor F, const char *FigureName,
                           const char *ExpectedShape, unsigned Workers,
                           std::string TracePath = std::string(),
                           bool Supervised = false,
                           std::string CacheDir = std::string()) {
  TraceSession Trace(std::move(TracePath));
  std::cout << FigureName << ": performance and precision for introspective "
            << flavorName(F) << " variants\n"
            << "(DNF = resource budget exceeded; precision cells of DNF "
               "runs are '-'; sweep: "
            << Workers << (Workers == 1 ? " worker" : " workers")
            << (Supervised ? "; supervised: one child process per cell)"
                           : ")")
            << "\n\n";

  TableWriter Times({"benchmark", "insens", std::string(flavorName(F)) +
                                                "-IntroA",
                     std::string(flavorName(F)) + "-IntroB", flavorName(F)});
  TableWriter Poly({"benchmark", "insens", "IntroA", "IntroB", "full"});
  TableWriter Reach({"benchmark", "insens", "IntroA", "IntroB", "full"});
  TableWriter Casts({"benchmark", "insens", "IntroA", "IntroB", "full"});

  // Programs are generated upfront and shared read-only by the cells.
  std::vector<WorkloadProfile> Subjects = scalabilitySubjects();
  std::vector<Program> Programs;
  Programs.reserve(Subjects.size());
  for (const WorkloadProfile &Profile : Subjects)
    Programs.push_back(generateWorkload(Profile));

  // With --cache-dir, the introspective cells share Pass-A results through
  // the content-addressed store: IntroA and IntroB of one subject have the
  // same pre-analysis, and a warm rerun of the figure skips all of them.
  // Fingerprints are computed once up front (read-only, shared by cells);
  // each cell opens its *own* ResultCache handle over the directory so
  // nothing mutable is shared across sweep threads or — in --supervised
  // mode — across fork() (an inherited locked store mutex would deadlock
  // the child).  Correctness of concurrent access lives in the store's
  // temp-file + rename protocol, not in the handle.
  std::vector<cache::Fingerprint> Keys;
  if (!CacheDir.empty()) {
    Keys.reserve(Programs.size());
    for (const Program &Prog : Programs)
      Keys.push_back(cache::fingerprintProgram(Prog));
  }

  // Cell layout: 4 analyses per subject, insens / IntroA / IntroB / deep.
  constexpr size_t CellsPerSubject = 4;
  auto RunCell = [&](size_t Index) {
    const Program &Prog = Programs[Index / CellsPerSubject];
    std::optional<cache::ResultCache> Cache;
    if (!CacheDir.empty())
      Cache.emplace(cache::ResultCache::Options{CacheDir, 0});
    const cache::Fingerprint *Key =
        Cache ? &Keys[Index / CellsPerSubject] : nullptr;
    switch (Index % CellsPerSubject) {
    case 0: {
      auto Insens = makeInsensitivePolicy();
      return runPlain(Prog, *Insens);
    }
    case 1:
      return runIntro(Prog, F, HeuristicKind::A, Cache ? &*Cache : nullptr,
                      Key);
    case 2:
      return runIntro(Prog, F, HeuristicKind::B, Cache ? &*Cache : nullptr,
                      Key);
    default: {
      auto Full = makeFlavor(F, Prog);
      return runPlain(Prog, *Full);
    }
    }
  };
  std::vector<RunOutcome> Cells = runSweep(
      Subjects.size() * CellsPerSubject, Workers, [&](size_t Index) {
        if (Supervised)
          return runSupervisedCell([&] { return RunCell(Index); });
        return RunCell(Index);
      });

  for (size_t Subject = 0; Subject < Subjects.size(); ++Subject) {
    const std::string &Name = Subjects[Subject].Name;
    const RunOutcome &Base = Cells[Subject * CellsPerSubject + 0];
    const RunOutcome &IntroA = Cells[Subject * CellsPerSubject + 1];
    const RunOutcome &IntroB = Cells[Subject * CellsPerSubject + 2];
    const RunOutcome &Deep = Cells[Subject * CellsPerSubject + 3];

    Times.addRow({Name, timeCell(Base), timeCell(IntroA), timeCell(IntroB),
                  timeCell(Deep)});
    auto AddPrecision = [&](TableWriter &Table, auto Member) {
      Table.addRow({Name, precCell(Base, Base.Precision.*Member),
                    precCell(IntroA, IntroA.Precision.*Member),
                    precCell(IntroB, IntroB.Precision.*Member),
                    precCell(Deep, Deep.Precision.*Member)});
    };
    AddPrecision(Poly, &PrecisionMetrics::PolymorphicVirtualCallSites);
    AddPrecision(Reach, &PrecisionMetrics::ReachableMethods);
    AddPrecision(Casts, &PrecisionMetrics::CastsThatMayFail);
  }

  std::cout << "Running time\n";
  Times.print(std::cout);
  std::cout << "\nPolymorphic virtual call sites (lower is more precise)\n";
  Poly.print(std::cout);
  std::cout << "\nReachable methods (lower is more precise)\n";
  Reach.print(std::cout);
  std::cout << "\nReachable casts that may fail (lower is more precise)\n";
  Casts.print(std::cout);
  std::cout << "\nExpected shape (paper): " << ExpectedShape << "\n";

  // The run report's bench sections.  Deterministic part: one attempt row
  // per (subject, analysis) cell with the schedule-independent solver
  // counters — the sweep runs every cell at any worker count, so this is
  // byte-identical across --workers values.  Timing part: wall-clock.
  Trace.finish(
      [&](JsonWriter &J) {
        J.beginObject();
        J.key("figure");
        J.value(FigureName);
        J.key("flavor");
        J.value(flavorName(F));
        J.key("attempts");
        J.beginArray();
        for (size_t Index = 0; Index < Cells.size(); ++Index) {
          const RunOutcome &Cell = Cells[Index];
          J.beginObject();
          J.key("index");
          J.value(static_cast<uint64_t>(Index + 1));
          J.key("subject");
          J.value(Subjects[Index / CellsPerSubject].Name);
          J.key("analysis");
          J.value(Cell.Analysis);
          J.key("status");
          J.value(Cell.Status);
          J.key("completed");
          J.value(Cell.Completed);
          J.key("tuples");
          J.value(Cell.Tuples);
          J.key("worklist_pops");
          J.value(Cell.Stats.WorklistPops);
          J.key("contexts");
          J.value(Cell.Stats.NumContexts);
          J.key("reachable_method_contexts");
          J.value(Cell.Stats.ReachableMethodContexts);
          J.key("call_graph_edges");
          J.value(Cell.Stats.CallGraphEdges);
          J.endObject();
        }
        J.endArray();
        J.endObject();
      },
      [&](JsonWriter &J) {
        J.beginObject();
        J.key("workers");
        J.value(Workers);
        J.key("attempt_seconds");
        J.beginArray();
        for (const RunOutcome &Cell : Cells)
          J.value(Cell.Seconds);
        J.endArray();
        J.endObject();
      });
  return 0;
}

} // namespace intro::bench

#endif // BENCH_FIGFLAVOR_H
