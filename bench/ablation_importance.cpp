//===- bench/ablation_importance.cpp - Future-work importance guard -------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Evaluates the paper's Section 3 future-work direction: guarding the
/// cost heuristics with an *importance* estimate so that expensive-looking
/// but precision-critical elements stay refined.  Heuristic A's biggest
/// precision loss on these workloads comes from excluding the "popular
/// container" accessors (their field sets trip the M threshold, yet
/// refining them is cheap and client-visible).  The guard lifts exactly
/// those exclusions.
///
/// Compared per benchmark: insens, plain 2objH-IntroA, guarded
/// 2objH-IntroA, and full 2objH.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "introspect/Importance.h"

#include <iostream>

using namespace intro;
using namespace intro::bench;

namespace {

RunOutcome runGuarded(const Program &Prog, bool WithGuard) {
  auto Insens = makeInsensitivePolicy();
  ContextTable First;
  PointsToResult Pass1 = solvePointsTo(Prog, *Insens, First);
  IntrospectionMetrics Metrics = computeIntrospectionMetrics(Prog, Pass1);
  RefinementExceptions Exceptions = applyHeuristicA(Prog, Pass1, Metrics);

  uint64_t Lifted = 0;
  if (WithGuard) {
    ImportanceMetrics Importance = computeImportance(Prog, Pass1);
    Lifted = applyImportanceGuard(Prog, Importance, Exceptions);
  }

  auto Refined = makeObjectPolicy(Prog, 2, 1);
  auto Policy = makeIntrospectivePolicy(
      WithGuard ? "2objH-IntroA+guard" : "2objH-IntroA", *Insens, *Refined,
      Exceptions);
  ContextTable Table;
  SolverOptions Options;
  Options.Budget = deepBudget();
  PointsToResult Result = solvePointsTo(Prog, *Policy, Table, Options);

  RunOutcome Outcome;
  Outcome.Analysis = WithGuard ? "IntroA+guard" : "IntroA";
  Outcome.Completed = isCompleted(Result.Status);
  Outcome.Seconds = Result.Stats.Seconds;
  Outcome.Tuples =
      Result.Stats.VarPointsToTuples + Result.Stats.FieldPointsToTuples;
  Outcome.Precision = computePrecision(Prog, Result);
  Outcome.Refinement = computeRefinementStats(Prog, Pass1, Exceptions);
  if (WithGuard)
    std::cout << "  (guard lifted " << Lifted << " exclusions)\n";
  return Outcome;
}

} // namespace

int main() {
  std::cout << "Ablation: importance-guarded Heuristic A (the paper's\n"
               "Section 3 future-work direction), 2objH-based.\n\n";

  for (const WorkloadProfile &Profile : scalabilitySubjects()) {
    Program Prog = generateWorkload(Profile);
    std::cout << "benchmark: " << Profile.Name << "\n";

    auto Insens = makeInsensitivePolicy();
    RunOutcome Base = runPlain(Prog, *Insens);
    RunOutcome Plain = runGuarded(Prog, /*WithGuard=*/false);
    RunOutcome Guarded = runGuarded(Prog, /*WithGuard=*/true);
    auto Full = makeFlavor(Flavor::Object, Prog);
    RunOutcome Deep = runPlain(Prog, *Full);

    TableWriter Table({"analysis", "status", "tuples", "poly sites",
                       "casts may fail"});
    for (const RunOutcome *Out : {&Base, &Plain, &Guarded, &Deep})
      Table.addRow({Out->Analysis.empty() ? "insens" : Out->Analysis,
                    Out->Completed ? "completed" : "DNF",
                    TableWriter::num(Out->Tuples),
                    precCell(*Out, Out->Precision.PolymorphicVirtualCallSites),
                    precCell(*Out, Out->Precision.CastsThatMayFail)});
    Table.print(std::cout);
    std::cout << "\n";
  }
  std::cout
      << "Expected shape: the guard recovers most of plain IntroA's\n"
         "precision loss (casts/poly move toward full 2objH) while the\n"
         "scalability verdicts stay unchanged -- importance estimation\n"
         "improves the cost/precision dial, as the paper conjectured.\n";
  return 0;
}
