//===- bench/ablation_importance.cpp - Future-work importance guard -------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Evaluates the paper's Section 3 future-work direction: guarding the
/// cost heuristics with an *importance* estimate so that expensive-looking
/// but precision-critical elements stay refined.  Heuristic A's biggest
/// precision loss on these workloads comes from excluding the "popular
/// container" accessors (their field sets trip the M threshold, yet
/// refining them is cheap and client-visible).  The guard lifts exactly
/// those exclusions.
///
/// Compared per benchmark: insens, plain 2objH-IntroA, guarded
/// 2objH-IntroA, and full 2objH.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "Sweep.h"

#include "introspect/Importance.h"

#include <iostream>

using namespace intro;
using namespace intro::bench;

namespace {

/// One analysis cell; Lifted is only meaningful for the guarded run (the
/// count is returned instead of printed inline so the parallel sweep's
/// output stays deterministic).
struct ImportanceCell {
  RunOutcome Out;
  uint64_t Lifted = 0;
};

ImportanceCell runGuarded(const Program &Prog, bool WithGuard) {
  auto Insens = makeInsensitivePolicy();
  ContextTable First;
  PointsToResult Pass1 = solvePointsTo(Prog, *Insens, First);
  IntrospectionMetrics Metrics = computeIntrospectionMetrics(Prog, Pass1);
  RefinementExceptions Exceptions = applyHeuristicA(Prog, Pass1, Metrics);

  uint64_t Lifted = 0;
  if (WithGuard) {
    ImportanceMetrics Importance = computeImportance(Prog, Pass1);
    Lifted = applyImportanceGuard(Prog, Importance, Exceptions);
  }

  auto Refined = makeObjectPolicy(Prog, 2, 1);
  auto Policy = makeIntrospectivePolicy(
      WithGuard ? "2objH-IntroA+guard" : "2objH-IntroA", *Insens, *Refined,
      Exceptions);
  ContextTable Table;
  SolverOptions Options;
  Options.Budget = deepBudget();
  PointsToResult Result = solvePointsTo(Prog, *Policy, Table, Options);

  ImportanceCell Cell;
  Cell.Lifted = Lifted;
  RunOutcome &Outcome = Cell.Out;
  Outcome.Analysis = WithGuard ? "IntroA+guard" : "IntroA";
  Outcome.Completed = isCompleted(Result.Status);
  Outcome.Seconds = Result.Stats.Seconds;
  Outcome.Tuples =
      Result.Stats.VarPointsToTuples + Result.Stats.FieldPointsToTuples;
  Outcome.Precision = computePrecision(Prog, Result);
  Outcome.Refinement = computeRefinementStats(Prog, Pass1, Exceptions);
  return Cell;
}

} // namespace

int main(int argc, char **argv) {
  std::cout << "Ablation: importance-guarded Heuristic A (the paper's\n"
               "Section 3 future-work direction), 2objH-based.\n\n";

  std::vector<WorkloadProfile> Subjects = scalabilitySubjects();
  std::vector<Program> Programs;
  for (const WorkloadProfile &Profile : Subjects)
    Programs.push_back(generateWorkload(Profile));

  // Cell layout: insens / plain IntroA / guarded IntroA / full 2objH.
  constexpr size_t CellsPerSubject = 4;
  std::vector<ImportanceCell> Cells = runSweep(
      Subjects.size() * CellsPerSubject, sweepWorkers(argc, argv),
      [&](size_t Index) {
        const Program &Prog = Programs[Index / CellsPerSubject];
        switch (Index % CellsPerSubject) {
        case 0: {
          auto Insens = makeInsensitivePolicy();
          return ImportanceCell{runPlain(Prog, *Insens), 0};
        }
        case 1:
          return runGuarded(Prog, /*WithGuard=*/false);
        case 2:
          return runGuarded(Prog, /*WithGuard=*/true);
        default: {
          auto Full = makeFlavor(Flavor::Object, Prog);
          return ImportanceCell{runPlain(Prog, *Full), 0};
        }
        }
      });

  for (size_t Subject = 0; Subject < Subjects.size(); ++Subject) {
    std::cout << "benchmark: " << Subjects[Subject].Name << "\n";
    const ImportanceCell *Row = &Cells[Subject * CellsPerSubject];
    std::cout << "  (guard lifted " << Row[2].Lifted << " exclusions)\n";

    TableWriter Table({"analysis", "status", "tuples", "poly sites",
                       "casts may fail"});
    for (size_t Cell = 0; Cell < CellsPerSubject; ++Cell) {
      const RunOutcome &Out = Row[Cell].Out;
      Table.addRow({Out.Analysis.empty() ? "insens" : Out.Analysis,
                    Out.Completed ? "completed" : "DNF",
                    TableWriter::num(Out.Tuples),
                    precCell(Out, Out.Precision.PolymorphicVirtualCallSites),
                    precCell(Out, Out.Precision.CastsThatMayFail)});
    }
    Table.print(std::cout);
    std::cout << "\n";
  }
  std::cout
      << "Expected shape: the guard recovers most of plain IntroA's\n"
         "precision loss (casts/poly move toward full 2objH) while the\n"
         "scalability verdicts stay unchanged -- importance estimation\n"
         "improves the cost/precision dial, as the paper conjectured.\n";
  return 0;
}
