//===- bench/fig7_callsite_sens.cpp - Paper Figure 7 ----------------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "FigFlavor.h"

#include "support/ExitCodes.h"

#include <exception>
#include <iostream>

int main(int argc, char **argv) try {
  if (int Code = intro::bench::checkFigArgs(argc, argv); Code >= 0)
    return Code;
  return intro::bench::runFlavorFigure(
      intro::bench::Flavor::CallSite, "Figure 7",
      "base 2callH does not terminate on 4 of 6 benchmarks; IntroA\n"
      "terminates on all, IntroB on all but jython; where 2callH\n"
      "completes, IntroB matches its full precision on every metric.",
      intro::bench::sweepWorkers(argc, argv),
      intro::bench::traceFile(argc, argv),
      intro::bench::supervisedFlag(argc, argv),
      intro::bench::cacheDirFlag(argc, argv));
} catch (const std::exception &Error) {
  std::cerr << "internal error: " << Error.what() << "\n";
  return intro::ExitInternalError;
} catch (...) {
  std::cerr << "internal error: unknown exception\n";
  return intro::ExitInternalError;
}
