//===- bench/fig7_callsite_sens.cpp - Paper Figure 7 ----------------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "FigFlavor.h"

int main(int argc, char **argv) {
  return intro::bench::runFlavorFigure(
      intro::bench::Flavor::CallSite, "Figure 7",
      "base 2callH does not terminate on 4 of 6 benchmarks; IntroA\n"
      "terminates on all, IntroB on all but jython; where 2callH\n"
      "completes, IntroB matches its full precision on every metric.",
      intro::bench::sweepWorkers(argc, argv),
      intro::bench::traceFile(argc, argv));
}
