//===- bench/Sweep.h - Parallel benchmark sweep runner ----------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny parallel map for the figure and ablation harnesses: the
/// benchmark matrices (subject x analysis) are embarrassingly parallel —
/// every cell is an independent solver run over a read-only Program — so
/// the harnesses fan the cells out over a thread pool and print the tables
/// afterwards, in the same deterministic order as the old sequential
/// loops.  Output is byte-identical for any worker count; only wall-clock
/// changes.
///
/// Worker-count policy (sweepWorkers): `--workers=N` beats the
/// INTRO_WORKERS environment variable beats one-per-hardware-thread.
/// `--workers=1` reproduces the sequential behaviour (including its
/// single-run timing fidelity; concurrent cells contend for cores, so
/// per-cell seconds are only comparable within one worker count).
///
//===----------------------------------------------------------------------===//

#ifndef BENCH_SWEEP_H
#define BENCH_SWEEP_H

#include "support/ThreadPool.h"

#include <cstdlib>
#include <future>
#include <string>
#include <vector>

namespace intro::bench {

/// Resolves the worker count of a sweep binary from, in order of
/// precedence: a `--workers=N` command-line flag, the INTRO_WORKERS
/// environment variable, one worker per hardware thread.  Unparseable or
/// zero values fall through to the next source.
inline unsigned sweepWorkers(int argc, char **argv) {
  auto Parse = [](const std::string &Text) -> unsigned {
    if (Text.empty() || Text.find_first_not_of("0123456789") != std::string::npos)
      return 0;
    unsigned long Value = std::strtoul(Text.c_str(), nullptr, 10);
    return Value > 1024 ? 1024 : static_cast<unsigned>(Value);
  };
  const std::string Flag = "--workers=";
  for (int Index = 1; Index < argc; ++Index) {
    std::string Arg = argv[Index];
    if (Arg.compare(0, Flag.size(), Flag) == 0)
      if (unsigned Workers = Parse(Arg.substr(Flag.size())))
        return Workers;
  }
  if (const char *Env = std::getenv("INTRO_WORKERS"))
    if (unsigned Workers = Parse(Env))
      return Workers;
  return ThreadPool::defaultWorkerCount();
}

/// Runs Task(0), ..., Task(Count - 1) on \p Workers pool threads and
/// returns the results in index order.  Task must be callable concurrently
/// from several threads (i.e. touch only its own cell plus read-only shared
/// state); the first exception a task throws is rethrown here after the
/// pool drains.
template <typename Fn>
auto runSweep(size_t Count, unsigned Workers, Fn &&Task)
    -> std::vector<decltype(Task(size_t(0)))> {
  using Result = decltype(Task(size_t(0)));
  std::vector<Result> Results(Count);
  if (Count == 0)
    return Results;
  if (Workers == 0)
    Workers = ThreadPool::defaultWorkerCount();
  if (static_cast<size_t>(Workers) > Count)
    Workers = static_cast<unsigned>(Count);
  ThreadPool Pool(Workers);
  std::vector<std::future<Result>> Futures;
  Futures.reserve(Count);
  for (size_t Index = 0; Index < Count; ++Index)
    Futures.push_back(Pool.submit([&Task, Index] { return Task(Index); }));
  for (size_t Index = 0; Index < Count; ++Index)
    Results[Index] = Futures[Index].get();
  return Results;
}

} // namespace intro::bench

#endif // BENCH_SWEEP_H
