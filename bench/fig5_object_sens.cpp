//===- bench/fig5_object_sens.cpp - Paper Figure 5 ------------------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "FigFlavor.h"

#include "support/ExitCodes.h"

#include <exception>
#include <iostream>

int main(int argc, char **argv) try {
  if (int Code = intro::bench::checkFigArgs(argc, argv); Code >= 0)
    return Code;
  return intro::bench::runFlavorFigure(
      intro::bench::Flavor::Object, "Figure 5",
      "2objH blows up on hsqldb and jython (and is the slow outlier on\n"
      "bloat); IntroA scales to all benchmarks with moderate precision\n"
      "gains over insens; IntroB scales to all but jython while keeping\n"
      "most of 2objH's precision.",
      intro::bench::sweepWorkers(argc, argv),
      intro::bench::traceFile(argc, argv),
      intro::bench::supervisedFlag(argc, argv),
      intro::bench::cacheDirFlag(argc, argv));
} catch (const std::exception &Error) {
  std::cerr << "internal error: " << Error.what() << "\n";
  return intro::ExitInternalError;
} catch (...) {
  std::cerr << "internal error: unknown exception\n";
  return intro::ExitInternalError;
}
