//===- bench/fig5_object_sens.cpp - Paper Figure 5 ------------------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "FigFlavor.h"

int main(int argc, char **argv) {
  return intro::bench::runFlavorFigure(
      intro::bench::Flavor::Object, "Figure 5",
      "2objH blows up on hsqldb and jython (and is the slow outlier on\n"
      "bloat); IntroA scales to all benchmarks with moderate precision\n"
      "gains over insens; IntroB scales to all but jython while keeping\n"
      "most of 2objH's precision.",
      intro::bench::sweepWorkers(argc, argv),
      intro::bench::traceFile(argc, argv));
}
