//===- bench/ablation_constants.cpp - Heuristic-constant sweep ------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation for the Section 3 claim that "even relatively large variations
/// of these numbers make scarcely any difference in the total picture":
/// sweeps Heuristic A's (K, L, M) and Heuristic B's (P, Q) by factors of
/// 1/2 and 2 around the paper defaults, on one well-behaved benchmark
/// (bloat) and the pathological one (jython), under 2objH.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "Sweep.h"

#include <iostream>

using namespace intro;
using namespace intro::bench;

namespace {

RunOutcome runWithParams(const Program &Prog, HeuristicKind Kind,
                         double Scale) {
  IntrospectiveOptions Options;
  Options.Heuristic = Kind;
  Options.ParamsA.K = static_cast<uint64_t>(100 * Scale);
  Options.ParamsA.L = static_cast<uint64_t>(100 * Scale);
  Options.ParamsA.M = static_cast<uint64_t>(200 * Scale);
  Options.ParamsB.P = static_cast<uint64_t>(10000 * Scale);
  Options.ParamsB.Q = static_cast<uint64_t>(10000 * Scale);
  Options.SecondPassBudget = deepBudget();

  auto Refined = makeObjectPolicy(Prog, 2, 1);
  IntrospectiveOutcome Out = runIntrospective(Prog, *Refined, Options);
  RunOutcome Outcome;
  Outcome.Completed = isCompleted(Out.SecondPass.Status);
  Outcome.Seconds = Out.SecondPassSeconds;
  Outcome.Tuples = Out.SecondPass.Stats.VarPointsToTuples +
                   Out.SecondPass.Stats.FieldPointsToTuples;
  Outcome.Precision = computePrecision(Prog, Out.SecondPass);
  Outcome.Refinement = Out.Stats;
  return Outcome;
}

} // namespace

int main(int argc, char **argv) {
  std::cout << "Ablation: heuristic-constant sensitivity (Section 3 claim\n"
               "that the technique's value does not come from excessive\n"
               "tuning), 2objH-based introspective analyses.\n\n";

  // The (benchmark, heuristic, scale) matrix is swept in parallel; rows
  // are printed afterwards in the fixed nesting order of the old loops.
  const char *Names[] = {"bloat", "jython"};
  const HeuristicKind Kinds[] = {HeuristicKind::A, HeuristicKind::B};
  const double Scales[] = {0.5, 1.0, 2.0};
  constexpr size_t CellsPerBenchmark = 2 * 3;

  std::vector<Program> Programs;
  for (const char *Name : Names)
    Programs.push_back(generateWorkload(dacapoProfile(Name)));

  std::vector<RunOutcome> Cells =
      runSweep(std::size(Names) * CellsPerBenchmark,
               sweepWorkers(argc, argv), [&](size_t Index) {
                 const Program &Prog = Programs[Index / CellsPerBenchmark];
                 size_t Cell = Index % CellsPerBenchmark;
                 return runWithParams(Prog, Kinds[Cell / 3], Scales[Cell % 3]);
               });

  for (size_t Benchmark = 0; Benchmark < std::size(Names); ++Benchmark) {
    std::cout << "benchmark: " << Names[Benchmark] << "\n";
    TableWriter Table({"heuristic", "scale", "status", "tuples",
                       "poly call sites", "casts may fail",
                       "sites excl", "objs excl"});
    for (size_t Cell = 0; Cell < CellsPerBenchmark; ++Cell) {
      const RunOutcome &Out = Cells[Benchmark * CellsPerBenchmark + Cell];
      Table.addRow(
          {Cell / 3 == 0 ? "A (K,L,M)" : "B (P,Q)",
           TableWriter::num(Scales[Cell % 3], 1) + "x",
           Out.Completed ? "completed" : "DNF", TableWriter::num(Out.Tuples),
           precCell(Out, Out.Precision.PolymorphicVirtualCallSites),
           precCell(Out, Out.Precision.CastsThatMayFail),
           TableWriter::percent(Out.Refinement.callSitePercent()),
           TableWriter::percent(Out.Refinement.objectPercent())});
    }
    Table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Expected shape: within each heuristic, halving/doubling the\n"
               "constants barely moves the scalability verdict or the\n"
               "precision metrics.\n";
  return 0;
}
