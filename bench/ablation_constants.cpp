//===- bench/ablation_constants.cpp - Heuristic-constant sweep ------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation for the Section 3 claim that "even relatively large variations
/// of these numbers make scarcely any difference in the total picture":
/// sweeps Heuristic A's (K, L, M) and Heuristic B's (P, Q) by factors of
/// 1/2 and 2 around the paper defaults, on one well-behaved benchmark
/// (bloat) and the pathological one (jython), under 2objH.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <iostream>

using namespace intro;
using namespace intro::bench;

namespace {

RunOutcome runWithParams(const Program &Prog, HeuristicKind Kind,
                         double Scale) {
  IntrospectiveOptions Options;
  Options.Heuristic = Kind;
  Options.ParamsA.K = static_cast<uint64_t>(100 * Scale);
  Options.ParamsA.L = static_cast<uint64_t>(100 * Scale);
  Options.ParamsA.M = static_cast<uint64_t>(200 * Scale);
  Options.ParamsB.P = static_cast<uint64_t>(10000 * Scale);
  Options.ParamsB.Q = static_cast<uint64_t>(10000 * Scale);
  Options.SecondPassBudget = deepBudget();

  auto Refined = makeObjectPolicy(Prog, 2, 1);
  IntrospectiveOutcome Out = runIntrospective(Prog, *Refined, Options);
  RunOutcome Outcome;
  Outcome.Completed = isCompleted(Out.SecondPass.Status);
  Outcome.Seconds = Out.SecondPassSeconds;
  Outcome.Tuples = Out.SecondPass.Stats.VarPointsToTuples +
                   Out.SecondPass.Stats.FieldPointsToTuples;
  Outcome.Precision = computePrecision(Prog, Out.SecondPass);
  Outcome.Refinement = Out.Stats;
  return Outcome;
}

} // namespace

int main() {
  std::cout << "Ablation: heuristic-constant sensitivity (Section 3 claim\n"
               "that the technique's value does not come from excessive\n"
               "tuning), 2objH-based introspective analyses.\n\n";

  for (const char *Name : {"bloat", "jython"}) {
    Program Prog = generateWorkload(dacapoProfile(Name));
    std::cout << "benchmark: " << Name << "\n";
    TableWriter Table({"heuristic", "scale", "status", "tuples",
                       "poly call sites", "casts may fail",
                       "sites excl", "objs excl"});
    for (HeuristicKind Kind : {HeuristicKind::A, HeuristicKind::B})
      for (double Scale : {0.5, 1.0, 2.0}) {
        RunOutcome Out = runWithParams(Prog, Kind, Scale);
        Table.addRow(
            {Kind == HeuristicKind::A ? "A (K,L,M)" : "B (P,Q)",
             TableWriter::num(Scale, 1) + "x",
             Out.Completed ? "completed" : "DNF", TableWriter::num(Out.Tuples),
             precCell(Out, Out.Precision.PolymorphicVirtualCallSites),
             precCell(Out, Out.Precision.CastsThatMayFail),
             TableWriter::percent(Out.Refinement.callSitePercent()),
             TableWriter::percent(Out.Refinement.objectPercent())});
      }
    Table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Expected shape: within each heuristic, halving/doubling the\n"
               "constants barely moves the scalability verdict or the\n"
               "precision metrics.\n";
  return 0;
}
