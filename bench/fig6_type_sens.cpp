//===- bench/fig6_type_sens.cpp - Paper Figure 6 --------------------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "FigFlavor.h"

int main(int argc, char **argv) {
  return intro::bench::runFlavorFigure(
      intro::bench::Flavor::Type, "Figure 6",
      "2typeH blows up on jython only; IntroB scales to all programs with\n"
      "precision close to full 2typeH; IntroA has near-perfect\n"
      "scalability with lower precision gains.",
      intro::bench::sweepWorkers(argc, argv),
      intro::bench::traceFile(argc, argv));
}
