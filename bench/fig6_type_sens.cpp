//===- bench/fig6_type_sens.cpp - Paper Figure 6 --------------------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "FigFlavor.h"

#include "support/ExitCodes.h"

#include <exception>
#include <iostream>

int main(int argc, char **argv) try {
  if (int Code = intro::bench::checkFigArgs(argc, argv); Code >= 0)
    return Code;
  return intro::bench::runFlavorFigure(
      intro::bench::Flavor::Type, "Figure 6",
      "2typeH blows up on jython only; IntroB scales to all programs with\n"
      "precision close to full 2typeH; IntroA has near-perfect\n"
      "scalability with lower precision gains.",
      intro::bench::sweepWorkers(argc, argv),
      intro::bench::traceFile(argc, argv),
      intro::bench::supervisedFlag(argc, argv),
      intro::bench::cacheDirFlag(argc, argv));
} catch (const std::exception &Error) {
  std::cerr << "internal error: " << Error.what() << "\n";
  return intro::ExitInternalError;
} catch (...) {
  std::cerr << "internal error: unknown exception\n";
  return intro::ExitInternalError;
}
