//===- bench/micro_resilient.cpp - Degradation-ladder overhead ------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks for the resilience layer.  The contract
/// is that resilience is free when nothing goes wrong: a runResilient call
/// whose first attempted rung succeeds must cost < 1% over the equivalent
/// non-resilient driver.  Three comparisons:
///
///   - runIntrospective(A)  vs  runResilient starting at the IntroA rung
///     (identical analysis work; the delta is pure ladder bookkeeping);
///   - plain deep solve     vs  runResilient whose deep rung succeeds;
///   - the full forced ladder (every rung faulted) to price the worst case.
///
//===----------------------------------------------------------------------===//

#include "analysis/ContextPolicy.h"
#include "analysis/Solver.h"
#include "introspect/Driver.h"
#include "introspect/Resilient.h"
#include "workload/DaCapo.h"

#include <benchmark/benchmark.h>

using namespace intro;

namespace {

Program chartProgram() { return generateWorkload(dacapoProfile("chart")); }

} // namespace

/// Baseline: the two-pass introspective driver with Heuristic A.
static void BM_IntrospectiveA(benchmark::State &State) {
  Program Prog = chartProgram();
  auto Refined = makeObjectPolicy(Prog, 2, 1);
  IntrospectiveOptions Options;
  Options.Heuristic = HeuristicKind::A;
  for (auto _ : State) {
    IntrospectiveOutcome Out = runIntrospective(Prog, *Refined, Options);
    benchmark::DoNotOptimize(Out.SecondPass.Stats.VarPointsToTuples);
  }
}
BENCHMARK(BM_IntrospectiveA);

/// The ladder doing the same work: deep and IntroB rungs skipped, IntroA
/// succeeds first try.  Identical solver+metric work as BM_IntrospectiveA;
/// any delta is the ladder's bookkeeping (must stay < 1%).
static void BM_ResilientHappyIntroA(benchmark::State &State) {
  Program Prog = chartProgram();
  auto Refined = makeObjectPolicy(Prog, 2, 1);
  ResilientOptions Options;
  Options.AttemptDeep = false;
  Options.AttemptIntroB = false;
  for (auto _ : State) {
    ResilientOutcome Out = runResilient(Prog, *Refined, Options);
    benchmark::DoNotOptimize(Out.Result.Stats.VarPointsToTuples);
  }
}
BENCHMARK(BM_ResilientHappyIntroA);

/// Baseline: one plain deep solve.
static void BM_PlainDeep(benchmark::State &State) {
  Program Prog = chartProgram();
  auto Refined = makeObjectPolicy(Prog, 2, 1);
  for (auto _ : State) {
    ContextTable Table;
    PointsToResult R = solvePointsTo(Prog, *Refined, Table);
    benchmark::DoNotOptimize(R.Stats.VarPointsToTuples);
  }
}
BENCHMARK(BM_PlainDeep);

/// The ladder whose deep rung succeeds outright: no pre-analysis, no
/// metrics, one trace entry.
static void BM_ResilientHappyDeep(benchmark::State &State) {
  Program Prog = chartProgram();
  auto Refined = makeObjectPolicy(Prog, 2, 1);
  for (auto _ : State) {
    ResilientOutcome Out = runResilient(Prog, *Refined);
    benchmark::DoNotOptimize(Out.Result.Stats.VarPointsToTuples);
  }
}
BENCHMARK(BM_ResilientHappyDeep);

/// Worst case: every refined rung is forced to fail at its first worklist
/// pop, so the run prices the whole ladder walk down to insensitive.
static void BM_ResilientFullLadder(benchmark::State &State) {
  Program Prog = chartProgram();
  auto Refined = makeObjectPolicy(Prog, 2, 1);
  ResilientOptions Options;
  for (DegradationLevel Level :
       {DegradationLevel::Deep, DegradationLevel::IntroB,
        DegradationLevel::IntroA, DegradationLevel::TightenedIntroA})
    Options.faultsFor(Level).FailAtPop = 1;
  for (auto _ : State) {
    ResilientOutcome Out = runResilient(Prog, *Refined, Options);
    benchmark::DoNotOptimize(Out.Trace.size());
  }
}
BENCHMARK(BM_ResilientFullLadder);

/// The same forced-failure ladder in portfolio mode: the rungs race on a
/// pool instead of serializing, so this prices the concurrency win (and
/// overhead) against BM_ResilientFullLadder on identical work.
static void BM_ResilientPortfolioLadder(benchmark::State &State) {
  Program Prog = chartProgram();
  auto Refined = makeObjectPolicy(Prog, 2, 1);
  ResilientOptions Options;
  Options.Portfolio = true;
  Options.Workers = 4;
  for (DegradationLevel Level :
       {DegradationLevel::Deep, DegradationLevel::IntroB,
        DegradationLevel::IntroA, DegradationLevel::TightenedIntroA})
    Options.faultsFor(Level).FailAtPop = 1;
  for (auto _ : State) {
    ResilientOutcome Out = runResilient(Prog, *Refined, Options);
    benchmark::DoNotOptimize(Out.Trace.size());
  }
}
BENCHMARK(BM_ResilientPortfolioLadder);

BENCHMARK_MAIN();
